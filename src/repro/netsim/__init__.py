"""Packet-level network simulator substrate.

This package stands in for the real 1996 Internet of the paper: IPv4
addressing, shared link segments with latency/bandwidth/MTU, ARP (with
the proxy ARP the home agent needs), static longest-prefix routing,
boundary routers with source-address filtering and transit policy,
IP fragmentation/reassembly, ICMP, and three tunneling schemes.

Everything above it — Mobile IP (:mod:`repro.mobileip`), transport
(:mod:`repro.transport`) and the 4x4 decision machinery
(:mod:`repro.core`) — talks to this substrate only through
:class:`Node`'s IP send/receive interface and route-override hook.
"""

from .addressing import AddressAllocator, AddressError, IPAddress, Network
from .encap import EncapScheme, decapsulate, encap_overhead, encapsulate
from .events import Event, EventQueue, SimClock
from .faults import FaultError, FaultEvent, FaultInjector, FaultKind, FaultPlan
from .filters import (
    Direction,
    FilterEngine,
    FilterRule,
    Verdict,
    egress_source_filter,
    ingress_spoof_filter,
    transit_traffic_filter,
)
from .fragmentation import FragmentationNeeded, Reassembler, fragment
from .icmp import CareOfAdvisory, EchoData, IcmpMessage, IcmpType, make_icmp_packet
from .link import ETHERNET_MTU, Frame, Interface, LinkAddress, Segment
from .node import Node, PhysicalRoute, RouteTarget, VirtualRoute
from .packet import DEFAULT_TTL, IPV4_HEADER_SIZE, HopRecord, IPProto, Packet
from .router import BoundaryRouter, Router
from .routing import Route, RoutingError, RoutingTable
from .simulator import Simulator
from .tools import TracerouteResult, render_topology, traceroute
from .topology import Domain, Internet
from .trace import TraceEntry, TraceLog

__all__ = [
    "AddressAllocator",
    "AddressError",
    "IPAddress",
    "Network",
    "EncapScheme",
    "decapsulate",
    "encap_overhead",
    "encapsulate",
    "Event",
    "EventQueue",
    "SimClock",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "Direction",
    "FilterEngine",
    "FilterRule",
    "Verdict",
    "egress_source_filter",
    "ingress_spoof_filter",
    "transit_traffic_filter",
    "FragmentationNeeded",
    "Reassembler",
    "fragment",
    "CareOfAdvisory",
    "EchoData",
    "IcmpMessage",
    "IcmpType",
    "make_icmp_packet",
    "ETHERNET_MTU",
    "Frame",
    "Interface",
    "LinkAddress",
    "Segment",
    "Node",
    "PhysicalRoute",
    "RouteTarget",
    "VirtualRoute",
    "DEFAULT_TTL",
    "IPV4_HEADER_SIZE",
    "HopRecord",
    "IPProto",
    "Packet",
    "BoundaryRouter",
    "Router",
    "Route",
    "RoutingError",
    "RoutingTable",
    "Simulator",
    "TracerouteResult",
    "render_topology",
    "traceroute",
    "Domain",
    "Internet",
    "TraceEntry",
    "TraceLog",
]
