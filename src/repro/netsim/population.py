"""Million-host worlds: flyweight host pools and aggregate expansion.

The ROADMAP's north star is "millions of users", but a full
:class:`~repro.netsim.node.Node` carries interfaces, an ARP cache, a
routing table, a transport stack — kilobytes of state and a private
registration-refresh timer on the engine heap.  Worlds built that way
top out three orders of magnitude short.  The population layer closes
the gap the way large mobility simulations do it: *state aggregation*.

Two tiers of host:

* **full nodes** — anything traffic actually touches keeps the complete
  machinery (unchanged);
* **pooled hosts** — the long tail of hosts that merely *exist* (a home
  address, a care-of address, a registration that must stay fresh) live
  in a :class:`HostPool`: struct-of-arrays storage (`array` module)
  costing tens of bytes per host, with their home-agent bindings held
  in a shared :class:`~repro.mobileip.binding.PoolBlock` rather than a
  million ``Binding`` objects.

Registration refresh moves off the per-host engine heap onto a single
bucketed :class:`TimerWheel` event per pool: one engine event per tick
services thousands of hosts with one C-level slice write.  Wheel ticks
emit no trace entries, send no packets, and draw no randomness, so a
pooled world is **digest-neutral**: its packet trace is byte-identical
to the same world without the pool.

Aggregate nodes expand lazily.  When a traffic program or a fault
targets a pooled host, :meth:`Population.promote` materializes it in
place as a full :class:`~repro.mobileip.mobile_host.MobileHost` with
identical addresses and an identical (shared, administratively
refreshed) binding.  Promotion itself is digest-invisible — building a
node writes no trace — so promoting before any packet flows reproduces
the non-pooled trace exactly; the eager ``"materialized"`` mode pins
that equality in tests by promoting every host at build time through
the very same code path.
"""

from __future__ import annotations

import math
from array import array
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from .addressing import IPAddress, Network
from .node import Node

if TYPE_CHECKING:  # pragma: no cover
    from ..mobileip.binding import PoolBlock
    from ..mobileip.home_agent import HomeAgent
    from .simulator import Simulator
    from .topology import Domain, Internet

__all__ = [
    "HostPool",
    "TimerWheel",
    "Population",
    "install_population",
    "POPULATION_KNOBS",
    "DEFAULT_POOL_LIFETIME",
    "REFRESH_FRACTION",
    "DEFAULT_WHEEL_BUCKETS",
    "MEGA_HOME_PREFIX",
]

DEFAULT_POOL_LIFETIME = 300.0
# Pooled registrations refresh at the same fraction of the lifetime a
# real client uses (see MobileHost._arm_refresh), so the aggregate
# behaves like the hosts it stands in for.
REFRESH_FRACTION = 0.8
DEFAULT_WHEEL_BUCKETS = 64

# The mega world's address plan: pooled home addresses come from one
# wide home prefix (a /16 holds only 65k hosts), care-of blocks are
# carved per visited domain out of the 12/8 space.  Both are disjoint
# from the canonical 10.x scenario prefixes and the 172.16/12 infra
# supernet.
MEGA_HOME_PREFIX = "11.0.0.0/8"
_MEGA_VISITED_BASE = IPAddress("12.0.0.0").value
_MEGA_VISITED_SPAN = 24  # bits available under 12/8 for carving

POPULATION_KNOBS = frozenset(
    {"hosts", "domains", "mode", "lifetime", "wheel_buckets"})
_POPULATION_MODES = ("pooled", "materialized")


class HostPool:
    """Struct-of-arrays storage for pooled hosts.

    Parallel arrays, indexed by pool slot ``i``:

    * ``home[i]`` — permanent home address (``home_base + i``; the
      array is kept anyway so consumers never assume contiguity);
    * ``care_of[i]`` — current care-of address in the visited domain;
    * ``registered_at[i]`` / ``lifetime[i]`` — binding freshness,
      *shared by reference* with the home agent's
      :class:`~repro.mobileip.binding.PoolBlock` so a wheel refresh
      updates both in one write;
    * ``domain_index[i]`` — which visited domain the host sits in;
    * ``alive[i]`` / ``promoted[i]`` — one byte each of status.

    Total: 30 bytes per host, independent of world size.
    """

    __slots__ = (
        "name", "home_base", "size", "home", "care_of", "registered_at",
        "lifetime", "domain_index", "alive", "promoted",
        "domain_names", "segments", "refreshes",
    )

    def __init__(self, name: str, home_base: int, size: int,
                 lifetime: float, registered_at: float):
        self.name = name
        self.home_base = int(home_base)
        self.size = size
        self.home = array("I", range(self.home_base, self.home_base + size))
        self.care_of = array("I", bytes(4 * size))
        self.registered_at = array("d", [registered_at]) * size
        self.lifetime = array("d", [lifetime]) * size
        self.domain_index = array("H", bytes(2 * size))
        self.alive = bytearray(b"\x01") * size
        self.promoted = bytearray(size)
        self.domain_names: List[str] = []
        self.segments: List[Dict[str, int]] = []  # {domain, start, stop}
        self.refreshes = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_segment(self, domain_name: str, care_base: int,
                    start: int, count: int) -> None:
        """Place pool slots ``[start, start + count)`` in a visited
        domain, with contiguous care-of addresses from ``care_base``."""
        if start + count > self.size:
            raise ValueError("pool segment exceeds pool size")
        index = len(self.domain_names)
        self.domain_names.append(domain_name)
        self.care_of[start:start + count] = array(
            "I", range(care_base, care_base + count))
        self.domain_index[start:start + count] = array(
            "H", [index]) * count
        self.segments.append(
            {"domain": domain_name, "start": start, "stop": start + count})

    # ------------------------------------------------------------------
    # Wheel service
    # ------------------------------------------------------------------
    def refresh_slice(self, lo: int, hi: int, now: float) -> int:
        """Re-stamp registrations for slots ``[lo, hi)``; returns the
        number of live registrations refreshed.

        One C-level slice assignment covers the whole bucket; dead
        slots get a meaningless timestamp too, but every read is gated
        on ``alive`` so they stay dead.
        """
        if lo >= hi:
            return 0
        refreshed = (hi - lo) - self.alive.count(0, lo, hi)
        if refreshed:
            self.registered_at[lo:hi] = array("d", [now]) * (hi - lo)
            self.refreshes += refreshed
        return refreshed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live(self) -> int:
        return self.size - self.alive.count(0)

    @property
    def promoted_count(self) -> int:
        return self.size - self.promoted.count(0)

    def host_name(self, index: int) -> str:
        return f"{self.name}-h{index}"

    def index_of_name(self, name: str) -> Optional[int]:
        prefix = f"{self.name}-h"
        if not name.startswith(prefix):
            return None
        try:
            index = int(name[len(prefix):])
        except ValueError:
            return None
        return index if 0 <= index < self.size else None

    def index_of_address(self, address: IPAddress) -> Optional[int]:
        index = int(address) - self.home_base
        return index if 0 <= index < self.size else None

    def state_bytes(self) -> int:
        """Bytes of array state held per the whole pool."""
        arrays = (self.home, self.care_of, self.registered_at,
                  self.lifetime, self.domain_index)
        return (sum(a.itemsize * len(a) for a in arrays)
                + len(self.alive) + len(self.promoted))


class TimerWheel:
    """A bucketed refresh wheel: one pending engine event per pool.

    The pool's slots are split into ``buckets`` contiguous slices; the
    wheel keeps exactly one event on the engine heap and services one
    bucket per tick, completing a full rotation every ``period``
    simulated seconds (80% of the pool lifetime, like a real client's
    refresh timer).  A tick re-stamps its bucket's registrations,
    prunes the binding table (a guarded no-op in steady state), and —
    on completing a rotation — advances the binding block's
    conservative expiry floor.

    Ticks touch arrays only: no trace entries, no packets, no RNG.
    They are digest-invisible by construction.
    """

    def __init__(self, sim: "Simulator", pool: HostPool,
                 block: "PoolBlock", buckets: int = DEFAULT_WHEEL_BUCKETS):
        if buckets < 1:
            raise ValueError("timer wheel needs at least one bucket")
        self.sim = sim
        self.pool = pool
        self.block = block
        self.buckets = min(buckets, max(1, pool.size))
        self.period = REFRESH_FRACTION * pool.lifetime[0] if pool.size else (
            REFRESH_FRACTION * DEFAULT_POOL_LIFETIME)
        self.tick_interval = self.period / self.buckets
        self._stride = math.ceil(pool.size / self.buckets) if pool.size else 0
        self._cursor = 0
        self._cycle_start: Optional[float] = None
        self.ticks = 0
        self.last_serviced = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.events.schedule(
            self.tick_interval, self._tick, label=f"{self.pool.name}-wheel")

    def _tick(self) -> None:
        now = self.sim.now
        bucket = self._cursor
        if bucket == 0:
            if self._cycle_start is not None:
                # Every live entry was re-stamped during the completed
                # rotation, so nothing can expire before the rotation's
                # start plus the minimum lifetime.
                self.block.expiry_floor = (
                    self._cycle_start + self.block.min_lifetime)
            self._cycle_start = now
        lo = bucket * self._stride
        hi = min(lo + self._stride, self.pool.size)
        self.last_serviced = self.pool.refresh_slice(lo, hi, now)
        self.ticks += 1
        self._cursor = (bucket + 1) % self.buckets
        self.sim.events.schedule(
            self.tick_interval, self._tick, label=f"{self.pool.name}-wheel")

    @property
    def depth(self) -> int:
        """Live registrations serviced per full rotation bucket."""
        return math.ceil(self.pool.live / self.buckets) if self.buckets else 0


class Population:
    """A world's pooled-host layer: pool, wheel, and promotion.

    Built by :func:`install_population`; reachable from the simulator
    (``sim.population``) and the topology (``net.population``) so the
    runner, the fault injector, and the engine sampler can find it.
    """

    def __init__(
        self,
        sim: "Simulator",
        net: "Internet",
        pool: HostPool,
        ha: "HomeAgent",
        ha_ip: IPAddress,
        home_domain: "Domain",
        block: "PoolBlock",
        wheel: TimerWheel,
        mode: str,
    ):
        self.sim = sim
        self.net = net
        self.pool = pool
        self.ha = ha
        self.ha_ip = ha_ip
        self.home_domain = home_domain
        self.block = block
        self.wheel = wheel
        self.mode = mode
        self.promotions = 0
        sim.population = self
        net.population = self
        ha.promoter = self.ensure_promoted
        metrics = sim.metrics
        metrics.gauge("population.hosts", read=lambda: self.pool.size)
        metrics.gauge(
            "population.flyweight",
            read=lambda: self.pool.size - self.pool.promoted_count)
        metrics.counter("population.promotions", read=lambda: self.promotions)
        metrics.counter("population.refreshes",
                        read=lambda: self.pool.refreshes)
        metrics.gauge("population.wheel_depth", read=lambda: self.wheel.depth)
        metrics.gauge("population.state_bytes",
                      read=lambda: self.state_bytes())

    # ------------------------------------------------------------------
    # Aggregate expansion
    # ------------------------------------------------------------------
    def promote(self, index: int) -> Node:
        """Materialize pool slot ``index`` as a full mobile host.

        Idempotent.  The promoted host reproduces exactly the state a
        :meth:`~repro.mobileip.mobile_host.MobileHost.move_to` call
        would have left: attached on its visited LAN with its care-of
        address, home address as a secondary, registered
        administratively (the shared pool binding keeps serving it, and
        the wheel keeps it fresh).  No trace entries, packets, or RNG —
        promotion is digest-invisible, so promoting before a packet
        flows reproduces the non-pooled trace byte for byte.
        """
        pool = self.pool
        if not 0 <= index < pool.size:
            raise IndexError(f"pool index {index} out of range 0..{pool.size - 1}")
        name = pool.host_name(index)
        if pool.promoted[index]:
            return self.sim.nodes[name]
        from ..mobileip.mobile_host import MobileHost

        domain_name = pool.domain_names[pool.domain_index[index]]
        home_address = IPAddress(pool.home[index])
        care_of = IPAddress(pool.care_of[index])
        host = MobileHost(
            name,
            self.sim,
            home_address=home_address,
            home_network=self.home_domain.prefix,
            home_agent_address=self.ha_ip,
            reg_lifetime=pool.lifetime[index],
            auto_reregister=False,
        )
        self.net.add_host(domain_name, host, address=care_of, claim=False)
        iface = host.interfaces["eth0"]
        iface.add_secondary(home_address)
        host.at_home = False
        host.care_of = care_of
        host.current_domain = domain_name
        host.registered = bool(pool.alive[index])
        pool.promoted[index] = 1
        self.promotions += 1
        return host

    def promote_name(self, name: str) -> Optional[Node]:
        """Promote (or fetch) the pooled host called ``name``; ``None``
        if the name does not belong to this pool."""
        index = self.pool.index_of_name(name)
        return None if index is None else self.promote(index)

    def promote_address(self, address: IPAddress) -> Optional[Node]:
        index = self.pool.index_of_address(address)
        return None if index is None else self.promote(index)

    def ensure_promoted(self, address: IPAddress) -> None:
        """Home-agent hook: a captured packet is about to be tunneled
        to ``address`` — make sure the destination machine exists."""
        index = self.pool.index_of_address(address)
        if index is not None and not self.pool.promoted[index]:
            self.promote(index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_bytes(self) -> int:
        """Pool-layer state bytes (the binding block shares the pool's
        arrays, so only its private ``alive`` bytearray adds)."""
        return self.pool.state_bytes() + len(self.block.alive)

    def stats(self) -> Dict[str, Any]:
        pool = self.pool
        return {
            "mode": self.mode,
            "hosts": pool.size,
            "live": pool.live,
            "promoted": pool.promoted_count,
            "promotions": self.promotions,
            "refreshes": pool.refreshes,
            "domains": len(pool.domain_names),
            "wheel": {
                "buckets": self.wheel.buckets,
                "tick_interval": self.wheel.tick_interval,
                "period": self.wheel.period,
                "ticks": self.wheel.ticks,
                "depth": self.wheel.depth,
                "last_serviced": self.wheel.last_serviced,
            },
            "state_bytes": self.state_bytes(),
            "bindings_live": self.block.live,
        }


def validate_population(config: Dict[str, Any]) -> None:
    """Validate a ``population`` knob dict; raises ``ValueError``."""
    if not isinstance(config, dict):
        raise ValueError(f"population must be an object, got {config!r}")
    unknown = set(config) - POPULATION_KNOBS
    if unknown:
        raise ValueError(
            f"population has unknown fields {sorted(unknown)} "
            f"(valid: {sorted(POPULATION_KNOBS)})")
    hosts = config.get("hosts")
    if not isinstance(hosts, int) or isinstance(hosts, bool) or hosts < 1:
        raise ValueError(
            f"population needs a positive int 'hosts', got {hosts!r}")
    domains = config.get("domains")
    if domains is not None and (
        not isinstance(domains, int) or isinstance(domains, bool)
        or domains < 1
    ):
        raise ValueError(
            f"population domains must be a positive int, got {domains!r}")
    mode = config.get("mode", "pooled")
    if mode not in _POPULATION_MODES:
        raise ValueError(
            f"population mode must be one of {_POPULATION_MODES}, "
            f"got {mode!r}")
    lifetime = config.get("lifetime", DEFAULT_POOL_LIFETIME)
    if not isinstance(lifetime, (int, float)) or isinstance(lifetime, bool) \
            or lifetime <= 0:
        raise ValueError(
            f"population lifetime must be > 0, got {lifetime!r}")
    buckets = config.get("wheel_buckets", DEFAULT_WHEEL_BUCKETS)
    if not isinstance(buckets, int) or isinstance(buckets, bool) \
            or buckets < 1:
        raise ValueError(
            f"population wheel_buckets must be a positive int, "
            f"got {buckets!r}")


def _default_domains(hosts: int) -> int:
    # Keep each visited domain comfortably inside a /16 LAN.
    return max(1, math.ceil(hosts / 60000))


def install_population(
    sim: "Simulator", net: "Internet", config: Dict[str, Any]
) -> Population:
    """Grow a hierarchical pooled population onto a built topology.

    Adds one wide ``mega-home`` domain holding a dedicated home agent,
    ``domains`` visited domains attached round-robin along the
    backbone, and one :class:`HostPool` whose hosts are spread across
    them.  Every pooled host is registered with the home agent
    administratively (silently — no registration packets, identical
    timestamps), the home block is captured by one proxy-ARP range
    entry, and a :class:`TimerWheel` keeps the registrations fresh.

    ``mode="materialized"`` then promotes every host eagerly through
    the same code path lazy promotion uses — the construction that
    makes pooled-vs-materialized digest equality hold by design.
    """
    validate_population(config)
    hosts = config["hosts"]
    domains = config.get("domains") or _default_domains(hosts)
    mode = config.get("mode", "pooled")
    lifetime = float(config.get("lifetime", DEFAULT_POOL_LIFETIME))
    buckets = config.get("wheel_buckets", DEFAULT_WHEEL_BUCKETS)

    per_domain = math.ceil(hosts / domains)
    bits = max(3, (per_domain + 16).bit_length())
    if bits > _MEGA_VISITED_SPAN or domains * (1 << bits) > (
        1 << _MEGA_VISITED_SPAN
    ):
        raise ValueError(
            f"population of {hosts} hosts across {domains} domains does "
            f"not fit the 12/8 visited space; use more domains")
    plen = 32 - bits

    from ..mobileip.home_agent import HomeAgent

    backbone = len(net.backbone)
    home_domain = net.add_domain("mega-home", MEGA_HOME_PREFIX, attach_at=0)
    ha = HomeAgent(
        "mega-ha", sim,
        home_network=home_domain.prefix,
        max_bindings=hosts + 16,
    )
    ha_ip = net.add_host("mega-home", ha)
    home_base = home_domain.allocator.reserve_block(hosts)

    now = sim.now
    pool = HostPool("mega", home_base, hosts,
                    lifetime=lifetime, registered_at=now)
    start = 0
    for d in range(domains):
        count = min(per_domain, hosts - start)
        if count <= 0:
            break
        prefix = Network(IPAddress(_MEGA_VISITED_BASE + (d << bits)), plen)
        domain = net.add_domain(
            f"mega-v{d}", prefix,
            attach_at=d % backbone,
            pool_size=count,
        )
        assert domain.pool_base is not None
        pool.add_segment(domain.name, domain.pool_base, start, count)
        start += count

    block = ha.register_many(pool)
    wheel = TimerWheel(sim, pool, block, buckets=buckets)
    wheel.start()
    population = Population(
        sim, net, pool, ha, ha_ip, home_domain, block, wheel, mode)
    if mode == "materialized":
        for index in range(hosts):
            population.promote(index)
    return population
