"""Packet filtering: the security-conscious boundary routers of §3.1.

The paper identifies two router policies that break naive Mobile IP:

1. **Ingress source-address filtering** — a boundary router drops
   packets arriving *from outside* whose source address claims to be
   *inside* the protected network (spoof protection), and, in the
   stricter egress direction, packets *leaving* with a source address
   that does not belong to the site (the "invalid source address"
   check that kills Out-DH from a visited network).
2. **Transit-traffic policy** — tail-circuit networks drop packets with
   source addresses foreign to the site that are not addressed to the
   site either.

Firewalls (§3.1 last paragraph) impose stricter, rule-based policies
and may additionally act as the home agent.  The :class:`FilterEngine`
expresses all of these as an ordered rule list, evaluated per packet
with its arrival direction; routers attach one engine per boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Sequence

from .addressing import IPAddress, Network
from .packet import IPProto, Packet

__all__ = [
    "Direction",
    "Verdict",
    "FilterRule",
    "FilterEngine",
    "ingress_spoof_filter",
    "egress_source_filter",
    "transit_traffic_filter",
]


class Direction(Enum):
    """Which way a packet crosses the boundary this engine guards."""

    INBOUND = "inbound"      # from the outside world into the site
    OUTBOUND = "outbound"    # from the site toward the outside world


class Verdict(Enum):
    ACCEPT = "accept"
    DROP = "drop"


@dataclass
class FilterRule:
    """One ordered rule: a predicate plus a verdict and a reason tag.

    ``reason`` appears verbatim in drop traces, making benchmark
    assertions ("dropped by source-address filter") precise.
    """

    name: str
    predicate: Callable[[Packet, Direction], bool]
    verdict: Verdict
    reason: str = ""

    def matches(self, packet: Packet, direction: Direction) -> bool:
        return self.predicate(packet, direction)


class FilterEngine:
    """Ordered first-match rule evaluation with a default verdict."""

    def __init__(
        self,
        rules: Sequence[FilterRule] = (),
        default: Verdict = Verdict.ACCEPT,
        name: str = "filter",
    ):
        self.rules: List[FilterRule] = list(rules)
        self.default = default
        self.name = name
        self.hits: dict[str, int] = {}

    def add(self, rule: FilterRule) -> None:
        self.rules.append(rule)

    def evaluate(self, packet: Packet, direction: Direction) -> tuple[Verdict, str]:
        """Return (verdict, reason) for a packet crossing in ``direction``."""
        for rule in self.rules:
            if rule.matches(packet, direction):
                self.hits[rule.name] = self.hits.get(rule.name, 0) + 1
                return rule.verdict, rule.reason or rule.name
        return self.default, "default"


# ----------------------------------------------------------------------
# The three canonical policies of §3.1, as rule constructors.
# ----------------------------------------------------------------------

def ingress_spoof_filter(inside: Network) -> FilterRule:
    """Drop inbound packets claiming an inside source address.

    Figure 2's scenario: "the boundary router will see a packet coming
    from outside the home network, with a source address claiming that
    the packet originates from a machine inside the home network."
    Only the *outer* (visible) header is examined — encapsulated inner
    packets are protected from scrutiny, which is exactly why
    bi-directional tunneling (Figure 3) works.
    """

    def predicate(packet: Packet, direction: Direction) -> bool:
        return direction is Direction.INBOUND and inside.contains(packet.src)

    return FilterRule(
        name=f"ingress-spoof[{inside}]",
        predicate=predicate,
        verdict=Verdict.DROP,
        reason="source-address-filter:inside-source-from-outside",
    )


def egress_source_filter(inside: Network) -> FilterRule:
    """Drop outbound packets whose source address is not the site's.

    This is the check that discards a visiting mobile host's Out-DH
    packets: they leave the visited site with a source address
    "belonging to a foreign network", which "normally indicates some
    inappropriate use of the network" (§3.1).
    """

    def predicate(packet: Packet, direction: Direction) -> bool:
        return direction is Direction.OUTBOUND and not inside.contains(packet.src)

    return FilterRule(
        name=f"egress-source[{inside}]",
        predicate=predicate,
        verdict=Verdict.DROP,
        reason="source-address-filter:foreign-source-leaving-site",
    )


def transit_traffic_filter(inside: Network) -> FilterRule:
    """Drop packets that neither originate from nor are destined to the site.

    "Most end-user networks have a policy forbidding transit traffic"
    (§3.1).  A packet seen at the boundary whose source *and*
    destination are both foreign is transit traffic.
    """

    def predicate(packet: Packet, direction: Direction) -> bool:
        return not inside.contains(packet.src) and not inside.contains(packet.dst)

    return FilterRule(
        name=f"no-transit[{inside}]",
        predicate=predicate,
        verdict=Verdict.DROP,
        reason="transit-traffic-forbidden",
    )


def firewall_allow_only(
    inside: Network,
    allowed_protos: Sequence[IPProto],
    allowed_hosts: Sequence[IPAddress] = (),
) -> List[FilterRule]:
    """A strict firewall: inbound traffic only for listed protocols/hosts.

    Models §3.1's note that "firewall routers usually impose much
    stricter restrictions"; the allowed-hosts list is how a site lets
    its firewall-resident home agent receive tunnel traffic.
    """
    allowed_hosts = [IPAddress(h) for h in allowed_hosts]
    allowed = set(allowed_protos)

    def predicate(packet: Packet, direction: Direction) -> bool:
        if direction is not Direction.INBOUND:
            return False
        if packet.dst in allowed_hosts:
            return False
        return packet.proto not in allowed

    return [
        ingress_spoof_filter(inside),
        FilterRule(
            name=f"firewall-default-deny[{inside}]",
            predicate=predicate,
            verdict=Verdict.DROP,
            reason="firewall-policy",
        ),
    ]
