"""Command-line interface: explore the reproduction without writing code.

Subcommands:

* ``grid``        — print Figure 10 (``--live`` runs all sixteen cells
  as real conversations and prints the empirical outcome next to the
  paper's classification).
* ``modes``       — print the eight modes' address tables (Figures 6-9).
* ``topology``    — build the standard stage and sketch it.
* ``trace``       — traceroute from the correspondent to the mobile
  host's home and care-of addresses (Figure 1 vs Figure 5, as hop
  lists).
* ``durability``  — run the §2 telnet-across-a-move experiment and
  report survival for a Mobile IP and a no-Mobile-IP session.
* ``policy``      — parse a §7.1.2 policy config file and query the
  disposition for one or more addresses.
* ``obs``         — run the canonical traffic workload with full
  observability on and print the per-mode span and engine summaries
  (optionally exporting a Chrome ``trace_event`` file).
* ``chaos``       — run the stage under a fault-injection script
  (``--fault-script faults.json``, or the built-in demo plan) and
  report how the recovery machinery fared.
* ``congestion``  — throttle and bound the home uplink, run the same
  paced CH→MH workload through each In-* delivery mode, and rank the
  modes by goodput and latency (invariants armed: every queue-overflow
  loss must be a classified terminal fate).
* ``sweep``       — expand an experiment-spec grid (``--grid g.json``,
  or the built-in 4x4-coverage grid) and run every cell, optionally
  across worker processes (``--jobs N``); ``--spec repro.json``
  replays a single spec, including one embedded in a fuzz repro.
  ``--progress`` streams per-cell completion to stderr and
  ``--ledger run.jsonl`` appends one durable JSONL record per cell.
  Parallel runs are supervised: ``--cell-timeout``/``--max-retries``
  bound misbehaving cells (quarantined as ``failed`` results unless
  ``--strict-cells``), ``--checkpoint``/``--resume`` journal and skip
  completed cells across crashes, and Ctrl-C drains gracefully
  (partial results written, exit 130).
* ``report``      — render a run ledger (or a committed
  ``BENCH_PR*.json`` trajectory) as markdown or JSON: phase-time
  breakdown, slowest cells, fast-forward/cache efficacy, violation
  index.
* ``mega``        — build a flyweight million-host world (see
  ``repro.netsim.population``), aim the canonical conversation at one
  pooled host, and report build time, bytes/host, and wheel
  throughput; ``--verify`` re-runs the world with every host
  materialized and insists the trace digests match.

The global ``--obs-out report.json`` flag enables the observability
layer (metrics registry snapshot, packet-lifecycle spans, engine
sampler) on any scenario-building subcommand and writes the merged
report when the command finishes; on ``sweep``/``chaos``/``fuzz`` it
additionally carries the result-cache and fast-forward counters.

The ``chaos``/``sweep``/``fuzz`` subcommands arm a postmortem flight
recorder by default (``--no-flightrec`` disarms): a bounded ring of
the last trace entries, dumped to ``flightrec.json`` (with engine
state) when a run ends with invariant violations — or, for chaos, an
unrecovered registration.

Installed as ``repro-mobility`` (see pyproject.toml), or run with
``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from .core.grid import GRID
from .core.modes import AddressPlan, InMode, OutMode, build_incoming_direct, build_outgoing
from .experiment import ExperimentSpec, SpecError
from .mobileip import Awareness
from .netsim import IPAddress, render_topology, traceroute
from .netsim.packet import IPProto

__all__ = ["main"]


def spec_from_args(args: argparse.Namespace, **overrides) -> ExperimentSpec:
    """The one place argparse output becomes an :class:`ExperimentSpec`.

    Every scenario-building subcommand describes its world as the
    default spec (the canonical stage) plus command-specific
    ``overrides`` — no subcommand re-spells the builder's keyword
    list.
    """
    fields = {"seed": args.seed}
    fields.update(overrides)
    return ExperimentSpec(**fields)


def _build_scenario(args: argparse.Namespace, spec: ExperimentSpec):
    """Build a spec's scenario, plus optional observability attachment.

    Every subcommand that assembles a stage goes through here so the
    global ``--obs-out`` flag can enable the observability layer on
    each scenario and collect the reports for ``main`` to merge.
    """
    scenario = build_scenario(**spec.scenario_kwargs())
    if getattr(args, "obs_out", None):
        args._obs.append(scenario.sim.enable_observability())
    return scenario


def _cmd_grid(args: argparse.Namespace) -> int:
    print(GRID.render())
    if not args.live:
        return 0
    print()
    print("running all sixteen cells live...")
    mismatches = 0
    for in_mode in InMode:
        for out_mode in OutMode:
            outcome = _run_cell(in_mode, out_mode, args)
            cell = GRID.cell(in_mode, out_mode)
            agrees = outcome == cell.works_with_tcp
            mismatches += not agrees
            status = "OK " if outcome else "DEAD"
            print(f"  {in_mode.value}/{out_mode.value:<7} [{status}] "
                  f"paper: {cell.cell_class.value:<20} "
                  f"{'' if agrees else '  <-- MISMATCH'}")
    print(f"\n{'all cells agree with Figure 10' if mismatches == 0 else f'{mismatches} mismatches!'}")
    return 0 if mismatches == 0 else 1


def _run_cell(in_mode: InMode, out_mode: OutMode, args: argparse.Namespace) -> bool:
    from .transport import UDPDatagram

    scenario = _build_scenario(args, spec_from_args(
        args,
        awareness=Awareness.MOBILE_AWARE.value,
        ch_in_visited_lan=(in_mode is InMode.IN_DH),
        visited_filtering=False,
        ch_filtering=False,
    ))
    plan = AddressPlan(MH_HOME_ADDRESS, scenario.mh.care_of,
                       scenario.ha_ip, scenario.ch_ip)
    if in_mode in (InMode.IN_DE, InMode.IN_DH):
        scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of, 300.0)
    sent_to = plan.care_of if in_mode is InMode.IN_DT else plan.home

    def on_request(data, size, src_ip, src_port):
        reply = UDPDatagram(7000, src_port, "rep", 30)
        packet = build_outgoing(out_mode, plan, payload=reply,
                                payload_size=reply.size, proto=IPProto.UDP)
        scenario.mh.ip_send(packet, bypass_overrides=True)

    sock = scenario.mh.stack.udp_socket(7000)
    sock.on_receive(on_request)
    replies = []
    ch_sock = scenario.ch.stack.udp_socket()
    ch_sock.on_receive(lambda d, s, ip, p: replies.append(ip))
    ch_sock.sendto("req", 40, sent_to, 7000)
    scenario.sim.run_for(20)
    return bool(replies) and replies[0] == sent_to


def _cmd_modes(args: argparse.Namespace) -> int:
    plan = AddressPlan(
        home=IPAddress("10.1.0.10"), care_of=IPAddress("10.2.0.2"),
        home_agent=IPAddress("10.1.0.1"), correspondent=IPAddress("10.3.0.2"),
    )
    print("cast: MH(home)=10.1.0.10  COA=10.2.0.2  HA=10.1.0.1  CH=10.3.0.2")
    print("\noutgoing (Figures 6/7):")
    for mode in OutMode:
        packet = build_outgoing(mode, plan, payload_size=100)
        print(f"  {mode.value:<7} {_describe(packet)}")
    print("\nincoming (Figures 8/9):")
    for mode in InMode:
        packet = build_incoming_direct(mode, plan, payload_size=100)
        print(f"  {mode.value:<7} {_describe(packet)}")
    return 0


def _describe(packet) -> str:
    if packet.is_encapsulated:
        inner = packet.innermost
        return (f"outer {packet.src} -> {packet.dst}  |  "
                f"inner {inner.src} -> {inner.dst}  ({packet.wire_size}B)")
    return f"{packet.src} -> {packet.dst}  ({packet.wire_size}B)"


def _cmd_topology(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args, spec_from_args(args))
    print(render_topology(scenario.net))
    print(f"\nmobile host: home {MH_HOME_ADDRESS}, care-of "
          f"{scenario.mh.care_of}, registered={scenario.mh.registered}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    scenario = _build_scenario(
        args, spec_from_args(args, visited_filtering=False))
    names = {}
    for node in scenario.sim.nodes.values():
        for address in node.addresses:
            names.setdefault(address, node.name)

    def resolver(address):
        return names.get(address, "?")

    targets = {
        "home": MH_HOME_ADDRESS,
        "care-of": scenario.mh.care_of,
    }
    for label, destination in targets.items():
        results = []
        traceroute(scenario.ch, destination, results.append)
        scenario.sim.run_for(180)
        print(f"--- to the {label} address ---")
        print(results[0].render(resolver) if results else "  (no result)")
        print()
    print("the home-address path bends through the home domain (Figure 1);")
    print("the care-of path is the direct route a smart CH uses (Figure 5).")
    return 0


def _cmd_durability(args: argparse.Namespace) -> int:
    from .apps import TelnetServer, TelnetSession

    for label, bound in (("Mobile IP (home endpoint)", False),
                         ("no Mobile IP (care-of endpoint)", True)):
        scenario = _build_scenario(args, spec_from_args(args))
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3)
        TelnetServer(scenario.ch.stack)
        session = TelnetSession(
            scenario.mh.stack, scenario.ch_ip, think_time=1.0, keystrokes=8,
            bound_ip=scenario.mh.care_of if bound else None,
        )
        scenario.sim.events.schedule(
            3.5, lambda s=scenario: s.mh.move_to(s.net, "visited2"))
        scenario.sim.run_for(250)
        outcome = "survived" if session.survived else (
            f"broke ({session.failure_reason})")
        print(f"{label:<34} {outcome:<28} "
              f"echoes {session.echoes_received}/{session.keystrokes_sent}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Run canonical traffic with the full observability layer on."""
    from .experiment import Runner, TrafficProgram

    traffic = None
    if args.datagrams > 0:
        traffic = TrafficProgram(port=7000, uniform={
            "datagrams": args.datagrams,
            "spacing": args.duration / args.datagrams,
            "size": 100,
            "direction": "ch->mh",
        })
    spec = spec_from_args(
        args,
        duration=args.duration + 5.0,
        traffic=traffic,
        observe=True,
        obs_cadence=args.cadence,
    )
    runner = Runner()
    result = runner.run(spec)
    obs = runner.scenario.sim.obs
    if getattr(args, "obs_out", None):
        args._obs.append(obs)

    report = result.obs
    print(f"simulated {report['sim_time']:.1f}s, "
          f"{report['events_processed']} events processed")
    print("\nper-mode datagram summary:")
    for mode, stats in sorted(report["spans"]["per_mode"].items()):
        latency = stats["latency"]
        print(f"  {mode:<14} count={stats['count']:<5} "
              f"delivered={stats['delivered']:<5} "
              f"dropped={stats['dropped']:<4} "
              f"fragmented={stats['fragmented']}")
        if latency["count"]:
            print(f"  {'':<14} latency mean={latency['mean'] * 1e3:.2f}ms "
                  f"p50={latency['p50'] * 1e3:.2f}ms "
                  f"p99={latency['p99'] * 1e3:.2f}ms")
        overhead = stats["overhead_bytes"]
        if overhead["count"]:
            print(f"  {'':<14} overhead mean={overhead['mean']:.1f}B "
                  f"max={overhead['max']}B")
    engine = report["engine"]["summary"]
    print("\nengine:")
    if engine["samples"]:
        print(f"  samples={engine['samples']} "
              f"peak_pending={engine['peak_pending']} "
              f"peak_heap={engine['peak_heap']} "
              f"mean_cancelled_ratio={engine['mean_cancelled_ratio']:.3f}")
        peak_util = engine["peak_link_utilization"]
        busiest = max(peak_util.items(), key=lambda kv: kv[1]) if peak_util \
            else ("-", 0.0)
        print(f"  peak_reassembly_pending={engine['peak_reassembly_pending']} "
              f"busiest link {busiest[0]} at {busiest[1]:.1%} utilization")
    else:
        print("  (no samples)")
    if args.chrome_trace:
        count = obs.export_chrome_trace(args.chrome_trace)
        print(f"\nwrote {count} trace events to {args.chrome_trace} "
              f"(load in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run a fault-injection scenario and print the recovery report."""
    import json

    from .analysis.chaos import demo_plan, run_chaos
    from .netsim.faults import FaultError, FaultPlan

    if args.fault_script:
        try:
            plan = FaultPlan.from_file(args.fault_script)
        except (OSError, FaultError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        plan = demo_plan()
    if args.show_plan:
        print(plan.to_json())
        return 0
    overrides = {}
    if getattr(args, "obs_out", None):
        # observe flows through chaos_spec into the spec, so the
        # Runner arms the full observability layer on the run itself.
        overrides["observe"] = True
    try:
        report = run_chaos(
            plan=plan,
            seed=args.seed,
            duration=args.duration,
            message_interval=args.interval,
            arm_invariants=True,
            flightrec_path=None if args.no_flightrec else args.flightrec,
            **overrides,
        )
    except FaultError as exc:
        # A plan naming a segment/node the stage does not have.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if getattr(args, "obs_out", None) and report.obs is not None:
        args._obs.append(report.obs)
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"chaos report written to {args.json_out}")
    # Nonzero exit when the run ended unhealthy: an invariant violated,
    # or the mobile host never recovered its registration.
    if report.invariant_violations:
        print(f"error: {report.invariant_violations} invariant "
              "violation(s) during the run", file=sys.stderr)
        return 1
    if not report.registered:
        print("error: mobile host did not recover its registration",
              file=sys.stderr)
        return 1
    return 0


def _cmd_congestion(args: argparse.Namespace) -> int:
    """Run the In-* congestion cells and print the ranking."""
    import json

    from .analysis.congestion import run_congestion

    report = run_congestion(
        seed=args.seed,
        datagrams=args.datagrams,
        spacing=args.spacing,
        size=args.size,
        bandwidth=args.bandwidth,
        queue=args.queue,
    )
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"congestion report written to {args.json_out}")
    # Nonzero exit when the stage was dishonest: an invariant violated,
    # or the bottleneck never actually overflowed (no contention means
    # the cells measured nothing).
    if report.violation_count:
        print(f"error: {report.violation_count} invariant violation(s) "
              "across the cells", file=sys.stderr)
        return 1
    if not report.total_queue_dropped:
        print("error: the bottleneck never overflowed — no contention "
              "was exercised", file=sys.stderr)
        return 1
    return 0


def _progress_renderer():
    """A :data:`ProgressCallback` painting one stderr status line."""

    def render(event):
        failed_note = (
            f"fail {event['failures_total']} "
            if event.get("failures_total") else "")
        line = (
            f"[{event['completed']}/{event['total']}] "
            f"{event['cells_per_sec']:.2f} cells/s "
            f"eta {event['eta_sec']:5.1f}s "
            f"cache {event['cache_hit_rate']:.0%} "
            f"viol {event['violations_total']} "
            f"{failed_note}"
            f"{(event['label'] or '')[:28]}"
        )
        print(f"\r{line:<79}", end="", file=sys.stderr, flush=True)

    return render


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Expand a spec grid and fan the runs out across processes."""
    import json

    from .experiment import (
        CellFailedError,
        ExperimentSpec,
        ResultCache,
        SpecGrid,
        SweepCheckpoint,
        SweepExecutor,
        aggregate_fast_forward,
        demo_grid,
    )
    from .obs.ledger import RunLedger

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 1
    if args.max_retries < 0:
        print(f"error: --max-retries must be >= 0, got {args.max_retries}",
              file=sys.stderr)
        return 1
    if args.spec and args.grid:
        print("error: --spec and --grid are mutually exclusive",
              file=sys.stderr)
        return 1
    try:
        if args.spec:
            specs = [ExperimentSpec.from_file(args.spec)]
        elif args.grid:
            specs = SpecGrid.from_file(args.grid).expand()
        else:
            specs = demo_grid().expand()
    except (OSError, SpecError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.show_specs:
        print(json.dumps([spec.to_dict() for spec in specs], indent=2,
                         sort_keys=True))
        return 0
    cache = None
    if not args.no_cache:
        cache = ResultCache(root=args.cache_dir)
    ledger = RunLedger(args.ledger) if args.ledger else None
    resume_map = None
    if args.resume:
        resume_map, torn = SweepCheckpoint.load(args.resume)
        if resume_map or torn:
            print(f"resuming: {len(resume_map)} checkpointed cell(s) "
                  f"loaded from {args.resume}"
                  + (f" ({torn} torn line(s) skipped)" if torn else ""),
                  file=sys.stderr)
        else:
            print(f"resuming: no completed cells in {args.resume}; "
                  "running the full grid", file=sys.stderr)
    # --resume without --checkpoint keeps journaling to the same file,
    # so a sweep interrupted twice still converges.
    checkpoint_path = args.checkpoint or args.resume
    checkpoint = SweepCheckpoint(checkpoint_path) if checkpoint_path else None
    try:
        executor = SweepExecutor(
            jobs=args.jobs,
            cache=cache,
            ledger=ledger,
            progress=_progress_renderer() if args.progress else None,
            flightrec_path=None if args.no_flightrec else args.flightrec,
            cell_timeout=args.cell_timeout,
            max_retries=args.max_retries,
            retry_backoff=args.retry_backoff,
            strict_cells=args.strict_cells,
            checkpoint=checkpoint,
            resume=resume_map,
            grace=args.grace,
        )
        result = executor.run(specs)
    except CellFailedError as exc:
        if args.progress:
            print(file=sys.stderr)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if ledger is not None:
            ledger.close()
        if checkpoint is not None:
            checkpoint.close()
    if args.progress:
        print(file=sys.stderr)  # leave the \r status line behind
    print(result.render())
    if checkpoint is not None:
        print(f"sweep checkpoint: {checkpoint.appended} cell(s) journaled "
              f"to {checkpoint_path}")
    if cache is not None:
        stats = cache.stats()
        print(f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
              f"{stats['invalidations']} invalidation(s), "
              f"{stats['bytes_read']}B read / {stats['bytes_written']}B "
              f"written ({cache.root})")
    if ledger is not None:
        print(f"run ledger: {ledger.appended} record(s) appended "
              f"to {args.ledger}")
    for path in result.flightrec_dumps():
        print(f"flight recorder dumped to {path}")
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"sweep results written to {args.json_out}")
    if getattr(args, "obs_out", None):
        from .obs.metrics import MetricsRegistry

        # The report-side registry: worker processes are gone, so the
        # fast-forward family reads the merged per-run totals, and the
        # cache family reads the live parent-side cache.
        registry = MetricsRegistry()
        if cache is not None:
            cache.register_metrics(registry)
        ff_totals = aggregate_fast_forward(result.results)
        registry.family("fast_forward", lambda: {
            key: float(value) for key, value in ff_totals.items()})
        args._obs.append({
            "command": "sweep",
            "runs": result.runs,
            "jobs": result.jobs,
            "elapsed": result.elapsed,
            "violation_count": result.violation_count,
            "metrics": registry.collect(),
        })
    if result.failed_count:
        # Quarantined cells are surfaced, not fatal: the exit status
        # reflects only real invariant violations (and interruption).
        print(f"warning: {result.failed_count} cell(s) quarantined after "
              "exhausting retries (see `failures` in --json-out / the "
              "ledger report)", file=sys.stderr)
    if result.interrupted:
        print("interrupted: sweep drained early; partial results "
              "written", file=sys.stderr)
        return 130
    if result.violation_count:
        print(f"error: {result.violation_count} invariant violation(s) "
              "across the sweep", file=sys.stderr)
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Property-based fuzzing with invariants armed; shrink on failure."""
    from .verify.fuzz import replay_repro, run_fuzz

    if args.repro:
        try:
            result = replay_repro(args.repro)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if result.ok:
            print(f"repro {args.repro}: no violations "
                  f"({result.trace_entries} trace entries)")
            return 0
        print(f"repro {args.repro}: violations "
              f"{result.violated_invariants()}")
        for violation in result.violations[:10]:
            print(f"  [{violation['invariant']}] t={violation['time']:.3f} "
                  f"node={violation['node']}: {violation['message']}")
        return 1

    report = run_fuzz(
        iterations=args.iterations,
        seed=args.seed,
        out=args.out,
        shrink=not args.no_shrink,
        max_tunnel_depth=args.max_tunnel_depth,
        flightrec_path=None if args.no_flightrec else args.flightrec,
    )
    print(report.render())
    if getattr(args, "obs_out", None):
        args._obs.append({
            "command": "fuzz",
            "cases_run": report.cases_run,
            "failed": report.failed,
            "fast_forward": dict(report.fast_forward),
        })
    return 1 if report.failed else 0


def _cmd_mega(args: argparse.Namespace) -> int:
    """Build a pooled mega world, converse with one host, report."""
    import json

    from .analysis.mega import run_mega

    if args.hosts < 1:
        print(f"error: --hosts must be >= 1, got {args.hosts}",
              file=sys.stderr)
        return 1
    runner = None
    observe = bool(getattr(args, "obs_out", None))
    try:
        from .experiment import Runner

        runner = Runner()
        report = run_mega(
            hosts=args.hosts,
            domains=args.domains,
            mode=args.mode,
            seed=args.seed,
            duration=args.duration,
            datagrams=args.datagrams,
            target_index=min(args.target, args.hosts - 1),
            verify=args.verify,
            observe=observe,
            runner=runner,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if observe and runner.scenario is not None \
            and runner.scenario.sim.obs is not None:
        args._obs.append(runner.scenario.sim.obs)
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"mega report written to {args.json_out}")
    if args.verify and not report.verified:
        print("error: pooled and materialized digests differ — "
              "aggregation changed the wire", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a run ledger or bench trajectory as markdown/JSON."""
    import json

    from .obs.ledger import (
        read_ledger,
        render_ledger_markdown,
        summarize_ledger,
        validate_record,
    )

    try:
        with open(args.path) as handle:
            text = handle.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    # A bench trajectory is one JSON document; a ledger is JSONL (a
    # single-record ledger also parses whole, so the schema field is
    # the discriminator).
    try:
        whole = json.loads(text)
    except json.JSONDecodeError:
        whole = None
    is_ledger = whole is None or (
        isinstance(whole, dict)
        and str(whole.get("schema", "")).startswith("repro-mobility-ledger")
    )
    is_bench = not is_ledger and isinstance(whole, dict) and (
        "baseline" in whole or ("results" in whole and "meta" in whole))
    invalid = 0
    if is_bench:
        summary = _bench_summary(whole)
        rendered = _render_bench_markdown(summary)
    elif is_ledger:
        records, torn = read_ledger(args.path)
        valid = []
        for record in records:
            if validate_record(record):
                invalid += 1
            else:
                valid.append(record)
        invalid += torn
        summary = summarize_ledger(valid)
        summary["invalid_records"] = invalid
        rendered = render_ledger_markdown(summary)
        if invalid:
            rendered += f"\n\n{invalid} invalid or torn record(s) skipped.\n"
    else:
        print(f"error: {args.path}: neither a run ledger nor a bench "
              "trajectory", file=sys.stderr)
        return 1
    output = (json.dumps(summary, indent=2, sort_keys=True) + "\n"
              if args.json else rendered)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(output)
        print(f"report written to {args.out}")
    else:
        print(output, end="" if output.endswith("\n") else "\n")
    if args.strict and invalid:
        print(f"error: {invalid} invalid ledger record(s)", file=sys.stderr)
        return 1
    return 0


def _bench_summary(data):
    """Normalize a bench file (raw suite or baseline/optimized pair)."""
    suites = {}
    if "meta" in data and "results" in data:
        suites["suite"] = data
    for name in ("baseline", "optimized"):
        suite = data.get(name)
        if isinstance(suite, dict) and "results" in suite:
            suites[name] = suite
    return {
        "kind": "bench",
        "suites": {
            name: {
                "meta": dict(suite.get("meta", {})),
                "workloads": {
                    workload: {
                        "ns_per_op": result.get("ns_per_op"),
                        "ops_per_sec": result.get("ops_per_sec"),
                        "units": result.get("units"),
                        "unit": result.get("unit"),
                    }
                    for workload, result in sorted(suite["results"].items())
                },
            }
            for name, suite in suites.items()
        },
        "speedup": dict(data.get("speedup") or {}),
    }


def _render_bench_markdown(summary) -> str:
    lines = ["# Bench trajectory report", ""]
    speedups = summary.get("speedup", {})
    for name, suite in summary["suites"].items():
        meta = suite.get("meta", {})
        note = (f" (python {meta['python']}, repeat {meta.get('repeat')})"
                if meta.get("python") else "")
        with_speedup = bool(speedups) and name == "optimized"
        lines.append(f"## {name}{note}")
        lines.append("")
        lines.append("| workload | ns/op | ops/sec |"
                     + (" speedup |" if with_speedup else ""))
        lines.append("|---|---:|---:|" + ("---:|" if with_speedup else ""))
        for workload, result in suite["workloads"].items():
            row = (f"| {workload} | {result['ns_per_op']:,.0f} "
                   f"| {result['ops_per_sec']:,.0f} |")
            if with_speedup and workload in speedups:
                row += f" {speedups[workload]:.2f}x |"
            elif with_speedup:
                row += " - |"
            lines.append(row)
        lines.append("")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mobility",
        description="Explore the Internet Mobility 4x4 reproduction.",
    )
    parser.add_argument("--seed", type=int, default=1996,
                        help="simulation seed (default 1996)")
    parser.add_argument("--obs-out", metavar="PATH", default=None,
                        help="enable the observability layer and write its "
                             "JSON report here when the command finishes")
    sub = parser.add_subparsers(dest="command", required=True)

    grid = sub.add_parser("grid", help="print Figure 10")
    grid.add_argument("--live", action="store_true",
                      help="also run all 16 cells as real conversations")
    grid.set_defaults(func=_cmd_grid)

    modes = sub.add_parser("modes", help="print the mode address tables")
    modes.set_defaults(func=_cmd_modes)

    topology = sub.add_parser("topology", help="sketch the standard stage")
    topology.set_defaults(func=_cmd_topology)

    trace = sub.add_parser("trace", help="traceroute the triangle")
    trace.set_defaults(func=_cmd_trace)

    durability = sub.add_parser("durability",
                                help="telnet across a move, both ways")
    durability.set_defaults(func=_cmd_durability)

    policy = sub.add_parser(
        "policy", help="parse a §7.1.2 policy config and query it")
    policy.add_argument("file", help="config file (prefix disposition lines)")
    policy.add_argument("address", nargs="*",
                        help="addresses to look up (prints dispositions)")
    policy.set_defaults(func=_cmd_policy)

    obs = sub.add_parser(
        "obs", help="run canonical traffic with full observability on")
    obs.add_argument("--datagrams", type=int, default=100,
                     help="datagrams to send (default 100)")
    obs.add_argument("--duration", type=float, default=10.0,
                     help="send window in simulated seconds (default 10)")
    obs.add_argument("--cadence", type=float, default=0.5,
                     help="engine sampling cadence in simulated seconds")
    obs.add_argument("--chrome-trace", metavar="PATH", default=None,
                     help="also export a Chrome trace_event JSON file")
    obs.set_defaults(func=_cmd_obs)

    chaos = sub.add_parser(
        "chaos", help="run a fault-injection scenario and report recovery")
    chaos.add_argument("--fault-script", metavar="PATH", default=None,
                       help="JSON FaultPlan (default: the built-in demo plan)")
    chaos.add_argument("--duration", type=float, default=260.0,
                       help="simulated seconds to run (default 260)")
    chaos.add_argument("--interval", type=float, default=2.0,
                       help="seconds between conversation messages (default 2)")
    chaos.add_argument("--show-plan", action="store_true",
                       help="print the plan as JSON and exit (no run)")
    chaos.add_argument("--json-out", metavar="PATH", default=None,
                       help="also write the chaos report as JSON")
    chaos.add_argument("--flightrec", metavar="PATH",
                       default="flightrec.json",
                       help="flight-recorder dump path (armed by default; "
                            "dumps on invariant violation or unrecovered "
                            "registration)")
    chaos.add_argument("--no-flightrec", action="store_true",
                       help="disarm the flight recorder")
    chaos.set_defaults(func=_cmd_chaos)

    congestion = sub.add_parser(
        "congestion",
        help="rank the In-* modes under a throttled, bounded home uplink")
    congestion.add_argument("--datagrams", type=int, default=400,
                            help="datagrams per cell (default 400)")
    congestion.add_argument("--spacing", type=float, default=0.002,
                            help="seconds between sends (default 0.002)")
    congestion.add_argument("--size", type=int, default=1000,
                            help="datagram payload bytes (default 1000)")
    congestion.add_argument("--bandwidth", type=float, default=1.5e6,
                            help="bottleneck bandwidth in bits/s "
                                 "(default 1.5e6)")
    congestion.add_argument("--queue", type=int, default=8,
                            help="bottleneck transmit-queue frames "
                                 "(default 8)")
    congestion.add_argument("--json-out", metavar="PATH", default=None,
                            help="also write the report as JSON")
    congestion.set_defaults(func=_cmd_congestion)

    sweep = sub.add_parser(
        "sweep",
        help="expand a spec grid and run it across worker processes")
    sweep.add_argument("--grid", metavar="PATH", default=None,
                       help="spec grid JSON ({\"base\": {...}, \"axes\": "
                            "{...}}); default: the built-in 4x4-coverage "
                            "grid")
    sweep.add_argument("--spec", metavar="PATH", default=None,
                       help="run a single experiment spec (also accepts a "
                            "fuzz repro file, replaying its embedded spec)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1: run inline; "
                            "per-run digests are identical at any --jobs)")
    sweep.add_argument("--json-out", metavar="PATH", default=None,
                       help="write the full sweep results as JSON")
    sweep.add_argument("--show-specs", action="store_true",
                       help="print the expanded specs as JSON and exit "
                            "(no run)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the spec-digest result cache (runs are "
                            "deterministic, so cached cells are normally "
                            "byte-identical to live ones)")
    sweep.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="result-cache directory (default: "
                            "$XDG_CACHE_HOME/repro-mobility or "
                            "~/.cache/repro-mobility)")
    sweep.add_argument("--progress", action="store_true",
                       help="stream per-cell completion to stderr "
                            "(completed/total, cells/s, ETA, cache-hit "
                            "rate, violations)")
    sweep.add_argument("--ledger", metavar="PATH", default=None,
                       help="append one JSONL run-ledger record per cell "
                            "as it completes (plus sweep-start/sweep-end "
                            "bookends); render with `repro-mobility "
                            "report PATH`")
    sweep.add_argument("--flightrec", metavar="PATH",
                       default="flightrec.json",
                       help="flight-recorder dump path (armed by default; "
                            "multi-cell sweeps write PATH-NNN.json per "
                            "violating cell)")
    sweep.add_argument("--no-flightrec", action="store_true",
                       help="disarm the flight recorder")
    sweep.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SEC",
                       help="wall-clock seconds per cell before its worker "
                            "is killed and the cell retried (default: no "
                            "timeout; needs --jobs >= 2)")
    sweep.add_argument("--max-retries", type=int, default=2,
                       help="re-dispatches per failing cell before it is "
                            "quarantined as a failed result (default 2)")
    sweep.add_argument("--retry-backoff", type=float, default=0.5,
                       metavar="SEC",
                       help="base of the exponential retry backoff "
                            "(default 0.5: retries wait 0.5s, 1s, 2s...)")
    sweep.add_argument("--strict-cells", action="store_true",
                       help="fail fast: the first cell failure aborts the "
                            "sweep instead of retrying and quarantining")
    sweep.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="journal completed cells to this JSONL file "
                            "(atomic appends; survives SIGKILL)")
    sweep.add_argument("--resume", metavar="PATH", default=None,
                       help="skip cells already completed in this "
                            "checkpoint file, and keep journaling to it "
                            "(unless --checkpoint names another)")
    sweep.add_argument("--grace", type=float, default=5.0, metavar="SEC",
                       help="seconds in-flight cells get to finish when "
                            "SIGINT/SIGTERM drains the sweep (default 5)")
    sweep.set_defaults(func=_cmd_sweep)

    fuzz = sub.add_parser(
        "fuzz",
        help="fuzz random topologies/traffic/faults with invariants armed")
    fuzz.add_argument("--iterations", type=int, default=200,
                      help="number of random cases to run (default 200)")
    fuzz.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                      help="fuzz campaign seed (defaults to the global "
                           "--seed)")
    fuzz.add_argument("--out", metavar="PATH", default=None,
                      help="write the shrunken repro JSON here on failure")
    fuzz.add_argument("--repro", metavar="PATH", default=None,
                      help="replay a previously-written repro file instead")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report the first failing case without shrinking")
    fuzz.add_argument("--max-tunnel-depth", type=int, default=None,
                      help="cap nested encapsulation depth for every case "
                           "(0 makes any tunnel a violation — a "
                           "deterministic failure for exercising the "
                           "shrinker and flight recorder)")
    fuzz.add_argument("--flightrec", metavar="PATH",
                      default="flightrec.json",
                      help="flight-recorder dump path (armed by default; "
                           "on failure the shrunken case replays once "
                           "with the recorder on, so the dump matches "
                           "the repro JSON)")
    fuzz.add_argument("--no-flightrec", action="store_true",
                      help="disarm the flight recorder")
    fuzz.set_defaults(func=_cmd_fuzz)

    mega = sub.add_parser(
        "mega",
        help="build a flyweight million-host world and converse with it")
    mega.add_argument("--hosts", type=int, default=1_000_000,
                      help="pooled mobile hosts to build (default 1000000)")
    mega.add_argument("--domains", type=int, default=None,
                      help="visited domains to spread them over "
                           "(default: about one per 60k hosts)")
    mega.add_argument("--mode", choices=["pooled", "materialized"],
                      default="pooled",
                      help="pooled: flyweight arrays + timer wheel "
                           "(default); materialized: promote every host "
                           "to a full node (expensive — small --hosts "
                           "only)")
    mega.add_argument("--duration", type=float, default=30.0,
                      help="simulated seconds to run (default 30)")
    mega.add_argument("--datagrams", type=int, default=40,
                      help="conversation datagrams with the target host "
                           "(default 40; 0 builds the world silently)")
    mega.add_argument("--target", type=int, default=123,
                      help="pool index of the host the conversation "
                           "promotes and talks to (default 123)")
    mega.add_argument("--verify", action="store_true",
                      help="also run the materialized twin and require "
                           "byte-identical trace digests (keep --hosts "
                           "modest: every host becomes a full node)")
    mega.add_argument("--json-out", metavar="PATH", default=None,
                      help="also write the mega report as JSON")
    mega.set_defaults(func=_cmd_mega)

    report = sub.add_parser(
        "report",
        help="render a run ledger or bench trajectory as markdown/JSON")
    report.add_argument("path",
                        help="ledger JSONL (from sweep --ledger or a "
                             "Runner ledger) or a BENCH_PR*.json file")
    report.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of markdown")
    report.add_argument("--out", metavar="PATH", default=None,
                        help="write the report here instead of stdout")
    report.add_argument("--strict", action="store_true",
                        help="exit nonzero if any ledger record is "
                             "invalid or torn")
    report.set_defaults(func=_cmd_report)
    return parser


def _cmd_policy(args: argparse.Namespace) -> int:
    from .core.policy import MobilityPolicyTable

    try:
        with open(args.file) as handle:
            table = MobilityPolicyTable.parse(handle.read())
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(table.dump())
    for text in args.address:
        try:
            address = IPAddress(text)
        except Exception as exc:
            print(f"error: {text}: {exc}", file=sys.stderr)
            return 1
        print(f"{address} -> {table.lookup(address).value}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args._obs = []
    try:
        status = args.func(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Long-running subcommands (sweep, chaos, fuzz) must not
        # traceback on Ctrl-C: one line, conventional 128+SIGINT exit.
        print("interrupted", file=sys.stderr)
        return 130
    if getattr(args, "obs_out", None) and args._obs:
        import json

        reports = []
        for obs in args._obs:
            # Entries are live Observability handles (scenario-building
            # subcommands) or already-collected plain dicts (sweep's
            # merged counters, chaos's finished run report).
            if isinstance(obs, dict):
                reports.append(obs)
            else:
                obs.finish()
                reports.append(obs.report())
        merged = reports[0] if len(reports) == 1 else {"runs": reports}
        with open(args.obs_out, "w") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
        print(f"observability report written to {args.obs_out}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
