"""Command-line interface: explore the reproduction without writing code.

Subcommands:

* ``grid``        — print Figure 10 (``--live`` runs all sixteen cells
  as real conversations and prints the empirical outcome next to the
  paper's classification).
* ``modes``       — print the eight modes' address tables (Figures 6-9).
* ``topology``    — build the standard stage and sketch it.
* ``trace``       — traceroute from the correspondent to the mobile
  host's home and care-of addresses (Figure 1 vs Figure 5, as hop
  lists).
* ``durability``  — run the §2 telnet-across-a-move experiment and
  report survival for a Mobile IP and a no-Mobile-IP session.
* ``policy``      — parse a §7.1.2 policy config file and query the
  disposition for one or more addresses.

Installed as ``repro-mobility`` (see pyproject.toml), or run with
``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.scenarios import MH_HOME_ADDRESS, build_scenario
from .core.grid import GRID
from .core.modes import AddressPlan, InMode, OutMode, build_incoming_direct, build_outgoing
from .mobileip import Awareness
from .netsim import IPAddress, render_topology, traceroute
from .netsim.packet import IPProto

__all__ = ["main"]


def _cmd_grid(args: argparse.Namespace) -> int:
    print(GRID.render())
    if not args.live:
        return 0
    print()
    print("running all sixteen cells live...")
    from .transport import UDPDatagram

    mismatches = 0
    for in_mode in InMode:
        for out_mode in OutMode:
            outcome = _run_cell(in_mode, out_mode, seed=args.seed)
            cell = GRID.cell(in_mode, out_mode)
            agrees = outcome == cell.works_with_tcp
            mismatches += not agrees
            status = "OK " if outcome else "DEAD"
            print(f"  {in_mode.value}/{out_mode.value:<7} [{status}] "
                  f"paper: {cell.cell_class.value:<20} "
                  f"{'' if agrees else '  <-- MISMATCH'}")
    print(f"\n{'all cells agree with Figure 10' if mismatches == 0 else f'{mismatches} mismatches!'}")
    return 0 if mismatches == 0 else 1


def _run_cell(in_mode: InMode, out_mode: OutMode, seed: int) -> bool:
    from .transport import UDPDatagram

    scenario = build_scenario(
        seed=seed,
        ch_awareness=Awareness.MOBILE_AWARE,
        ch_in_visited_lan=(in_mode is InMode.IN_DH),
        visited_filtering=False,
        ch_filtering=False,
    )
    plan = AddressPlan(MH_HOME_ADDRESS, scenario.mh.care_of,
                       scenario.ha_ip, scenario.ch_ip)
    if in_mode in (InMode.IN_DE, InMode.IN_DH):
        scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of, 300.0)
    sent_to = plan.care_of if in_mode is InMode.IN_DT else plan.home

    def on_request(data, size, src_ip, src_port):
        reply = UDPDatagram(7000, src_port, "rep", 30)
        packet = build_outgoing(out_mode, plan, payload=reply,
                                payload_size=reply.size, proto=IPProto.UDP)
        scenario.mh.ip_send(packet, bypass_overrides=True)

    sock = scenario.mh.stack.udp_socket(7000)
    sock.on_receive(on_request)
    replies = []
    ch_sock = scenario.ch.stack.udp_socket()
    ch_sock.on_receive(lambda d, s, ip, p: replies.append(ip))
    ch_sock.sendto("req", 40, sent_to, 7000)
    scenario.sim.run_for(20)
    return bool(replies) and replies[0] == sent_to


def _cmd_modes(args: argparse.Namespace) -> int:
    plan = AddressPlan(
        home=IPAddress("10.1.0.10"), care_of=IPAddress("10.2.0.2"),
        home_agent=IPAddress("10.1.0.1"), correspondent=IPAddress("10.3.0.2"),
    )
    print("cast: MH(home)=10.1.0.10  COA=10.2.0.2  HA=10.1.0.1  CH=10.3.0.2")
    print("\noutgoing (Figures 6/7):")
    for mode in OutMode:
        packet = build_outgoing(mode, plan, payload_size=100)
        print(f"  {mode.value:<7} {_describe(packet)}")
    print("\nincoming (Figures 8/9):")
    for mode in InMode:
        packet = build_incoming_direct(mode, plan, payload_size=100)
        print(f"  {mode.value:<7} {_describe(packet)}")
    return 0


def _describe(packet) -> str:
    if packet.is_encapsulated:
        inner = packet.innermost
        return (f"outer {packet.src} -> {packet.dst}  |  "
                f"inner {inner.src} -> {inner.dst}  ({packet.wire_size}B)")
    return f"{packet.src} -> {packet.dst}  ({packet.wire_size}B)"


def _cmd_topology(args: argparse.Namespace) -> int:
    scenario = build_scenario(seed=args.seed,
                              ch_awareness=Awareness.CONVENTIONAL)
    print(render_topology(scenario.net))
    print(f"\nmobile host: home {MH_HOME_ADDRESS}, care-of "
          f"{scenario.mh.care_of}, registered={scenario.mh.registered}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    scenario = build_scenario(seed=args.seed,
                              ch_awareness=Awareness.CONVENTIONAL,
                              visited_filtering=False)
    names = {}
    for node in scenario.sim.nodes.values():
        for address in node.addresses:
            names.setdefault(address, node.name)

    def resolver(address):
        return names.get(address, "?")

    targets = {
        "home": MH_HOME_ADDRESS,
        "care-of": scenario.mh.care_of,
    }
    for label, destination in targets.items():
        results = []
        traceroute(scenario.ch, destination, results.append)
        scenario.sim.run_for(180)
        print(f"--- to the {label} address ---")
        print(results[0].render(resolver) if results else "  (no result)")
        print()
    print("the home-address path bends through the home domain (Figure 1);")
    print("the care-of path is the direct route a smart CH uses (Figure 5).")
    return 0


def _cmd_durability(args: argparse.Namespace) -> int:
    from .apps import TelnetServer, TelnetSession

    for label, bound in (("Mobile IP (home endpoint)", False),
                         ("no Mobile IP (care-of endpoint)", True)):
        scenario = build_scenario(seed=args.seed,
                                  ch_awareness=Awareness.CONVENTIONAL)
        scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3)
        TelnetServer(scenario.ch.stack)
        session = TelnetSession(
            scenario.mh.stack, scenario.ch_ip, think_time=1.0, keystrokes=8,
            bound_ip=scenario.mh.care_of if bound else None,
        )
        scenario.sim.events.schedule(
            3.5, lambda s=scenario: s.mh.move_to(s.net, "visited2"))
        scenario.sim.run_for(250)
        outcome = "survived" if session.survived else (
            f"broke ({session.failure_reason})")
        print(f"{label:<34} {outcome:<28} "
              f"echoes {session.echoes_received}/{session.keystrokes_sent}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mobility",
        description="Explore the Internet Mobility 4x4 reproduction.",
    )
    parser.add_argument("--seed", type=int, default=1996,
                        help="simulation seed (default 1996)")
    sub = parser.add_subparsers(dest="command", required=True)

    grid = sub.add_parser("grid", help="print Figure 10")
    grid.add_argument("--live", action="store_true",
                      help="also run all 16 cells as real conversations")
    grid.set_defaults(func=_cmd_grid)

    modes = sub.add_parser("modes", help="print the mode address tables")
    modes.set_defaults(func=_cmd_modes)

    topology = sub.add_parser("topology", help="sketch the standard stage")
    topology.set_defaults(func=_cmd_topology)

    trace = sub.add_parser("trace", help="traceroute the triangle")
    trace.set_defaults(func=_cmd_trace)

    durability = sub.add_parser("durability",
                                help="telnet across a move, both ways")
    durability.set_defaults(func=_cmd_durability)

    policy = sub.add_parser(
        "policy", help="parse a §7.1.2 policy config and query it")
    policy.add_argument("file", help="config file (prefix disposition lines)")
    policy.add_argument("address", nargs="*",
                        help="addresses to look up (prints dispositions)")
    policy.set_defaults(func=_cmd_policy)
    return parser


def _cmd_policy(args: argparse.Namespace) -> int:
    from .core.policy import MobilityPolicyTable

    try:
        with open(args.file) as handle:
            table = MobilityPolicyTable.parse(handle.read())
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(table.dump())
    for text in args.address:
        try:
            address = IPAddress(text)
        except Exception as exc:
            print(f"error: {text}: {exc}", file=sys.stderr)
            return 1
        print(f"{address} -> {table.lookup(address).value}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
