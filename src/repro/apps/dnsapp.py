"""DNS lookup workload (§7.1.1).

    "Connectionless datagram transactions, such as DNS name lookups,
    may also be usefully performed this way [Out-DT]."

A thin workload on top of :class:`repro.mobileip.dns.Resolver` that
records per-lookup latency and (for the §7.1.1 benchmark) which source
address the heuristics chose — a lookup to UDP port 53 from an unbound
socket should go Out-DT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..mobileip.dns import DNSAnswer, Resolver
from ..netsim.addressing import IPAddress
from ..transport.sockets import TransportStack

__all__ = ["LookupRecord", "DNSLookupWorkload"]


@dataclass
class LookupRecord:
    name: str
    started_at: float
    finished_at: Optional[float] = None
    answer: Optional[DNSAnswer] = None

    @property
    def latency(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def resolved(self) -> bool:
        return self.answer is not None and self.answer.address is not None


class DNSLookupWorkload:
    """Issues a batch of lookups and collects latency records."""

    def __init__(self, stack: TransportStack, server: IPAddress, want_tmp: bool = False):
        self.stack = stack
        self.resolver = Resolver(stack, server, want_tmp=want_tmp)
        self.records: List[LookupRecord] = []

    def lookup(self, name: str) -> LookupRecord:
        record = LookupRecord(name=name, started_at=self.stack.now)
        self.records.append(record)

        def on_answer(answer: DNSAnswer) -> None:
            record.finished_at = self.stack.now
            record.answer = answer

        self.resolver.lookup(name, on_answer)
        return record

    def lookup_many(self, names: List[str], interval: float = 0.05) -> None:
        """Issue lookups spaced ``interval`` apart."""
        def issue(index: int) -> None:
            if index >= len(names):
                return
            self.lookup(names[index])
            self.stack.schedule(interval, lambda: issue(index + 1), label="dns-batch")

        issue(0)

    @property
    def completed(self) -> List[LookupRecord]:
        return [record for record in self.records if record.finished_at is not None]

    def mean_latency(self) -> Optional[float]:
        latencies = [r.latency for r in self.completed if r.latency is not None]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)
