"""HTTP workload: the paper's Out-DT motivation (§4, §6.4).

    "HTTP connections are frequently very short lived, and if the host
    does move during the brief life of the connection, causing it to
    break, the user has the option of clicking the Web browser's
    'reload' button."

The model: a request/response over one TCP connection to port 80, with
an optional reload-on-failure retry — including the user's tolerance
for "an occasional incomplete image" (bounded retries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..netsim.addressing import IPAddress
from ..transport.sockets import TransportStack
from ..transport.tcp import TCPConnection

__all__ = ["HTTP_PORT", "FetchResult", "HTTPServer", "HTTPClient"]

HTTP_PORT = 80
REQUEST_SIZE = 250


@dataclass
class FetchResult:
    """Outcome of one page fetch."""

    url_host: IPAddress
    started_at: float
    finished_at: Optional[float] = None
    bytes_received: int = 0
    reloads: int = 0
    failed: bool = False
    failure_reason: str = ""

    @property
    def completed(self) -> bool:
        return self.finished_at is not None and not self.failed

    @property
    def latency(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class HTTPServer:
    """Serves a fixed-size page per request on TCP port 80."""

    def __init__(self, stack: TransportStack, page_size: int = 8000, port: int = HTTP_PORT):
        self.stack = stack
        self.page_size = page_size
        self.port = port
        self.requests_served = 0
        stack.listen(port, self._accept)

    def _accept(self, connection: TCPConnection) -> None:
        def on_data(data: object, size: int) -> None:
            self.requests_served += 1
            connection.send(self.page_size, data="page")
            connection.close()

        connection.on_data = on_data


class HTTPClient:
    """A browser-ish client: fetch with bounded reload retries."""

    def __init__(self, stack: TransportStack, max_reloads: int = 2):
        self.stack = stack
        self.max_reloads = max_reloads
        self.results: List[FetchResult] = []

    def fetch(
        self,
        server: IPAddress,
        on_done: Optional[Callable[[FetchResult], None]] = None,
        port: int = HTTP_PORT,
        bound_ip: Optional[IPAddress] = None,
    ) -> FetchResult:
        result = FetchResult(url_host=IPAddress(server), started_at=self.stack.now)
        self.results.append(result)
        self._attempt(result, port, bound_ip, on_done)
        return result

    def _attempt(
        self,
        result: FetchResult,
        port: int,
        bound_ip: Optional[IPAddress],
        on_done: Optional[Callable[[FetchResult], None]],
    ) -> None:
        connection = self.stack.connect(result.url_host, port, bound_ip=bound_ip)

        def finish() -> None:
            if result.finished_at is None:
                result.finished_at = self.stack.now
                if on_done is not None:
                    on_done(result)

        def on_established() -> None:
            connection.send(REQUEST_SIZE, data="GET /")

        def on_data(data: object, size: int) -> None:
            result.bytes_received += size
            finish()

        def on_fail(reason: str) -> None:
            if result.finished_at is not None:
                return
            if result.reloads < self.max_reloads:
                result.reloads += 1
                self._attempt(result, port, bound_ip, on_done)
            else:
                result.failed = True
                result.failure_reason = reason
                result.finished_at = self.stack.now
                if on_done is not None:
                    on_done(result)

        connection.on_established = on_established
        connection.on_data = on_data
        connection.on_fail = on_fail

    # ------------------------------------------------------------------
    @property
    def completed(self) -> List[FetchResult]:
        return [r for r in self.results if r.completed]

    @property
    def failed(self) -> List[FetchResult]:
        return [r for r in self.results if r.failed]
