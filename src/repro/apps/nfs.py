"""NFS workload: the source-address-trust security motivation (§3.1).

    "Many network services, including the majority of NFS servers,
    determine whether or not they can safely trust the host sending the
    packet solely based on the source address of the packet.  If we
    allow machines outside our network to send in packets with source
    addresses claiming to originate from trusted machines within our
    network, we effectively allow any machine on the Internet to
    impersonate any machine in our organization."

:class:`NFSServer` trusts exactly the prefixes in its export list, by
source address alone (1996-style AUTH_UNIX).  The §3.1 benchmark uses
it three ways: a spoofed request from outside with an inside source
address (dropped at a filtering boundary, accepted at a permissive
one); a mobile host's legitimate Out-DH request (killed by the same
filter); and the Out-IE reverse tunnel that restores access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..netsim.addressing import IPAddress, Network
from ..transport.sockets import TransportStack, UDPSocket

__all__ = ["NFS_PORT", "NFSRequest", "NFSResponse", "NFSServer", "NFSClient"]

NFS_PORT = 2049
REQUEST_SIZE = 120
RESPONSE_SIZE = 1000
CLIENT_RETRY_INTERVAL = 1.0


@dataclass(frozen=True)
class NFSRequest:
    op: str
    path: str
    ident: int

    @property
    def size(self) -> int:
        return REQUEST_SIZE + len(self.path)


@dataclass(frozen=True)
class NFSResponse:
    ident: int
    ok: bool
    detail: str = ""

    @property
    def size(self) -> int:
        return RESPONSE_SIZE if self.ok else 40


class NFSServer:
    """A UDP RPC file server trusting clients by source prefix."""

    def __init__(self, stack: TransportStack, exports: Sequence[Network]):
        self.stack = stack
        self.exports = list(exports)
        self._socket = stack.udp_socket(NFS_PORT)
        self._socket.on_receive(self._request_input)
        self.requests_granted = 0
        self.requests_refused = 0
        self.granted_sources: List[IPAddress] = []

    def trusts(self, source: IPAddress) -> bool:
        return any(prefix.contains(source) for prefix in self.exports)

    def _request_input(
        self, data: object, size: int, src_ip: IPAddress, src_port: int
    ) -> None:
        if not isinstance(data, NFSRequest):
            return
        if self.trusts(src_ip):
            self.requests_granted += 1
            self.granted_sources.append(src_ip)
            response = NFSResponse(data.ident, ok=True)
        else:
            self.requests_refused += 1
            response = NFSResponse(data.ident, ok=False, detail="access denied")
        self._socket.sendto(response, response.size, src_ip, src_port)


class NFSClient:
    """RPC client with at-most-N retries (UDP RPC semantics)."""

    def __init__(self, stack: TransportStack, server: IPAddress, max_retries: int = 3):
        self.stack = stack
        self.server = IPAddress(server)
        self.max_retries = max_retries
        self._socket: UDPSocket = stack.udp_socket()
        self._socket.on_receive(self._response_input)
        self._pending: Dict[int, Callable[[Optional[NFSResponse]], None]] = {}
        self.retries = 0

    def call(
        self,
        op: str,
        path: str,
        on_done: Callable[[Optional[NFSResponse]], None],
        src_override: Optional[IPAddress] = None,
    ) -> int:
        """Issue an RPC; ``on_done(None)`` means it timed out."""
        ident = self.stack.node.simulator.next_token()
        self._pending[ident] = on_done
        request = NFSRequest(op, path, ident)
        attempts = {"count": 0}

        def transmit() -> None:
            if ident not in self._pending:
                return
            if attempts["count"] > self.max_retries:
                callback = self._pending.pop(ident)
                callback(None)
                return
            if attempts["count"] > 0:
                self.retries += 1
            attempts["count"] += 1
            self._socket.sendto(
                request, request.size, self.server, NFS_PORT,
                src_override=src_override,
                is_retransmission=attempts["count"] > 1,
            )
            self.stack.schedule(CLIENT_RETRY_INTERVAL, transmit, label="nfs-retry")

        transmit()
        return ident

    def _response_input(
        self, data: object, size: int, src_ip: IPAddress, src_port: int
    ) -> None:
        if not isinstance(data, NFSResponse):
            return
        callback = self._pending.pop(data.ident, None)
        if callback is not None:
            callback(data)
