"""Telnet workload: the long-lived-connection motivation (§2, §8).

    "On our laptop computers running Linux we frequently have idle
    telnet connections that are preserved for hours, and sometimes even
    for days or weeks, while the laptop computer is sitting unused in
    'sleep' mode."

The model: an interactive session over TCP port 23 that types a
keystroke every ``think_time`` seconds and expects an echo.  The
session records per-keystroke echo RTTs and whether the connection
survived — the durability metric for the §2 connection-durability
benchmark, where the mobile host moves mid-session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..netsim.addressing import IPAddress
from ..transport.sockets import TransportStack
from ..transport.tcp import TCPConnection

__all__ = ["TELNET_PORT", "TelnetServer", "TelnetSession"]

TELNET_PORT = 23
KEYSTROKE_SIZE = 1


class TelnetServer:
    """Echoes every keystroke back, like a remote shell's terminal."""

    def __init__(self, stack: TransportStack, port: int = TELNET_PORT):
        self.stack = stack
        self.port = port
        self.keystrokes_echoed = 0
        stack.listen(port, self._accept)

    def _accept(self, connection: TCPConnection) -> None:
        def on_data(data: object, size: int) -> None:
            self.keystrokes_echoed += 1
            connection.send(size, data=data)

        connection.on_data = on_data


@dataclass
class _Keystroke:
    sent_at: float
    echoed_at: Optional[float] = None


class TelnetSession:
    """An interactive client session with periodic keystrokes."""

    def __init__(
        self,
        stack: TransportStack,
        server: IPAddress,
        think_time: float = 2.0,
        keystrokes: int = 20,
        port: int = TELNET_PORT,
        bound_ip: Optional[IPAddress] = None,
    ):
        self.stack = stack
        self.server = IPAddress(server)
        self.think_time = think_time
        self.total_keystrokes = keystrokes
        self._strokes: List[_Keystroke] = []
        self.alive = False
        self.failure_reason: Optional[str] = None
        self.connection: TCPConnection = stack.connect(
            self.server, port, bound_ip=bound_ip
        )
        self.connection.on_established = self._on_established
        self.connection.on_data = self._on_echo
        self.connection.on_fail = self._on_fail
        self.connection.on_close = self._on_close

    # ------------------------------------------------------------------
    def _on_established(self) -> None:
        self.alive = True
        self._type_next()

    def _type_next(self) -> None:
        if not self.alive or len(self._strokes) >= self.total_keystrokes:
            if self.alive and self.connection.is_open:
                self.connection.close()
            return
        self._strokes.append(_Keystroke(sent_at=self.stack.now))
        self.connection.send(KEYSTROKE_SIZE, data=len(self._strokes))
        self.stack.schedule(self.think_time, self._type_next, label="telnet-think")

    def _on_echo(self, data: object, size: int) -> None:
        if isinstance(data, int) and 1 <= data <= len(self._strokes):
            stroke = self._strokes[data - 1]
            if stroke.echoed_at is None:
                stroke.echoed_at = self.stack.now

    def _on_fail(self, reason: str) -> None:
        self.alive = False
        self.failure_reason = reason

    def _on_close(self) -> None:
        self.alive = False

    # ------------------------------------------------------------------
    @property
    def echoes_received(self) -> int:
        return sum(1 for stroke in self._strokes if stroke.echoed_at is not None)

    @property
    def keystrokes_sent(self) -> int:
        return len(self._strokes)

    @property
    def survived(self) -> bool:
        """True if the session never failed (orderly close is fine)."""
        return self.failure_reason is None

    @property
    def echo_rtts(self) -> List[float]:
        return [
            stroke.echoed_at - stroke.sent_at
            for stroke in self._strokes
            if stroke.echoed_at is not None
        ]

    def mean_echo_rtt(self) -> Optional[float]:
        rtts = self.echo_rtts
        if not rtts:
            return None
        return sum(rtts) / len(rtts)
