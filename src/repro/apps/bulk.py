"""Bulk transfer workload (FTP-ish): goodput measurement.

§3.3's byte overheads are per-packet; what a user feels is the flow-
level consequence: encapsulation bytes and MTU-crossing fragmentation
both subtract from goodput on a bandwidth-limited path.  This workload
pushes a fixed number of application bytes over one TCP connection and
reports the achieved goodput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..netsim.addressing import IPAddress
from ..transport.sockets import TransportStack
from ..transport.tcp import DEFAULT_MSS, TCPConnection

__all__ = ["BULK_PORT", "BulkResult", "BulkServer", "BulkClient"]

BULK_PORT = 20  # ftp-data, fittingly


@dataclass
class BulkResult:
    total_bytes: int
    started_at: float
    finished_at: Optional[float] = None
    failed: bool = False

    @property
    def duration(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def goodput_bps(self) -> Optional[float]:
        """Application bits per second actually achieved."""
        duration = self.duration
        if not duration:
            return None
        return self.total_bytes * 8 / duration


class BulkServer:
    """Sink that counts received bytes and acks completion."""

    def __init__(self, stack: TransportStack, port: int = BULK_PORT):
        self.stack = stack
        self.bytes_received = 0
        stack.listen(port, self._accept)

    def _accept(self, connection: TCPConnection) -> None:
        def on_data(data: object, size: int) -> None:
            self.bytes_received += size

        connection.on_data = on_data


class BulkClient:
    """Pushes ``total_bytes`` in MSS-sized chunks, windowed so the
    in-flight data stays bounded (the simplified TCP has no flow
    control of its own)."""

    def __init__(self, stack: TransportStack, window_segments: int = 8):
        self.stack = stack
        self.window = window_segments
        self.results: list[BulkResult] = []

    def transfer(
        self,
        server: IPAddress,
        total_bytes: int,
        on_done: Optional[Callable[[BulkResult], None]] = None,
        port: int = BULK_PORT,
        bound_ip: Optional[IPAddress] = None,
    ) -> BulkResult:
        result = BulkResult(total_bytes=total_bytes, started_at=self.stack.now)
        self.results.append(result)
        connection = self.stack.connect(server, port, bound_ip=bound_ip)
        state = {"sent": 0, "acked_watermark": 0}

        def finish(failed: bool) -> None:
            if result.finished_at is None:
                result.finished_at = self.stack.now
                result.failed = failed
                if on_done is not None:
                    on_done(result)

        def pump() -> None:
            # Keep `window` segments in flight: send more whenever the
            # unacked queue drains below the window.
            while (state["sent"] < total_bytes
                   and len(connection._unacked) < self.window):
                chunk = min(DEFAULT_MSS, total_bytes - state["sent"])
                state["sent"] += chunk
                connection.send(chunk)
            if state["sent"] >= total_bytes and not connection._unacked:
                finish(failed=False)
                return
            self.stack.schedule(0.005, pump, label="bulk-pump")

        connection.on_established = pump
        connection.on_fail = lambda reason: finish(failed=True)
        return result
