"""Application workloads from the paper's motivating examples.

* :mod:`repro.apps.http`      — short-lived request/response (Out-DT
  motivation, §4/§6.4).
* :mod:`repro.apps.telnet`    — long-lived interactive session
  (durability motivation, §2).
* :mod:`repro.apps.dnsapp`    — connectionless lookups (§7.1.1).
* :mod:`repro.apps.nfs`       — source-address-trusting RPC service
  (security motivation, §3.1).
* :mod:`repro.apps.multicast` — local join vs. home tunnel (§6.4).
* :mod:`repro.apps.bulk`      — FTP-ish bulk transfer (goodput under
  §3.3's overheads).
* :mod:`repro.apps.pop3`      — client-originated mail retrieval (the
  §2 trend the heuristics ride on).
"""

from .bulk import BULK_PORT, BulkClient, BulkResult, BulkServer
from .dnsapp import DNSLookupWorkload, LookupRecord
from .http import HTTP_PORT, FetchResult, HTTPClient, HTTPServer
from .multicast import HomeTunnelRelay, MulticastReceiver, MulticastSource
from .pop3 import POP3_PORT, MailCheck, POP3Client, POP3Server
from .nfs import NFS_PORT, NFSClient, NFSRequest, NFSResponse, NFSServer
from .telnet import TELNET_PORT, TelnetServer, TelnetSession

__all__ = [
    "BULK_PORT",
    "BulkClient",
    "BulkResult",
    "BulkServer",
    "DNSLookupWorkload",
    "LookupRecord",
    "HTTP_PORT",
    "FetchResult",
    "HTTPClient",
    "HTTPServer",
    "HomeTunnelRelay",
    "MulticastReceiver",
    "MulticastSource",
    "POP3_PORT",
    "MailCheck",
    "POP3Client",
    "POP3Server",
    "NFS_PORT",
    "NFSClient",
    "NFSRequest",
    "NFSResponse",
    "NFSServer",
    "TELNET_PORT",
    "TelnetServer",
    "TelnetSession",
]
