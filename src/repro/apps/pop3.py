"""POP3-style mail retrieval (§2's client-originated trend).

    "A lot of work has been done to make protocols client-originated
    wherever possible.  The trend towards using POP to retrieve
    electronic mail is one such example."

The paper's point: client-originated protocols are exactly the ones
that can forgo Mobile IP — the mobile host initiates, the conversation
is short, and nothing needs to find the host later.  A user who adds
``PortHeuristics.add_rule(IPProto.TCP, POP3_PORT)`` gets mail checks
over Out-DT; without the rule they ride Mobile IP like any unknown
port.  The workload exists so that trade is testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..netsim.addressing import IPAddress
from ..transport.sockets import TransportStack
from ..transport.tcp import TCPConnection

__all__ = ["POP3_PORT", "MailCheck", "POP3Server", "POP3Client"]

POP3_PORT = 110


@dataclass
class MailCheck:
    """One STAT+RETR-ish session's outcome."""

    started_at: float
    finished_at: Optional[float] = None
    messages_retrieved: int = 0
    bytes_retrieved: int = 0
    failed: bool = False

    @property
    def completed(self) -> bool:
        return self.finished_at is not None and not self.failed


class POP3Server:
    """Holds a mailbox; serves the whole spool per connection."""

    def __init__(self, stack: TransportStack, port: int = POP3_PORT):
        self.stack = stack
        self.mailbox: List[int] = []      # message sizes
        self.sessions_served = 0
        stack.listen(port, self._accept)

    def deliver_mail(self, size: int) -> None:
        """Drop a message of ``size`` bytes into the spool."""
        self.mailbox.append(size)

    def _accept(self, connection: TCPConnection) -> None:
        def on_data(data: object, size: int) -> None:
            if data != "RETR-ALL":
                return
            self.sessions_served += 1
            spool, self.mailbox = self.mailbox, []
            for index, message_size in enumerate(spool):
                connection.send(message_size,
                                data=("message", index, message_size))
            connection.send(10, data=("done", len(spool)))
            connection.close()

        connection.on_data = on_data


class POP3Client:
    """Connects, retrieves everything, disconnects — per check."""

    def __init__(self, stack: TransportStack):
        self.stack = stack
        self.checks: List[MailCheck] = []

    def check_mail(
        self,
        server: IPAddress,
        on_done: Optional[Callable[[MailCheck], None]] = None,
        port: int = POP3_PORT,
    ) -> MailCheck:
        check = MailCheck(started_at=self.stack.now)
        self.checks.append(check)
        connection = self.stack.connect(server, port)

        def finish(failed: bool) -> None:
            if check.finished_at is None:
                check.finished_at = self.stack.now
                check.failed = failed
                if on_done is not None:
                    on_done(check)

        def on_data(data: object, size: int) -> None:
            if isinstance(data, tuple) and data[0] == "message":
                check.messages_retrieved += 1
                check.bytes_retrieved += size
            elif isinstance(data, tuple) and data[0] == "done":
                finish(failed=False)

        connection.on_established = lambda: connection.send(20, data="RETR-ALL")
        connection.on_data = on_data
        connection.on_fail = lambda reason: finish(failed=True)
        return check
