"""Multicast workload: the §6.4 bypass argument.

    "One of the goals of IP multicast is to reduce unnecessary
    replication of network traffic.  Tunneling multicast packets from
    the home network to the visited network is therefore a little
    self-defeating.  It would be better if the multicast application
    were able to join the multicast group through its real physical
    interface on the current local network."

Pieces:

* :class:`MulticastSource` — streams fixed-size packets to a group at a
  fixed interval (a 1996 MBone session).
* :class:`MulticastReceiver` — a local group member counting packets
  and bytes.
* :class:`HomeTunnelRelay` — the self-defeating alternative: a node on
  the home network (typically the home agent) that joins the group and
  re-tunnels every stream packet to the mobile host's care-of address.

The §6.4 benchmark streams the same session both ways and compares
delivered bytes, wide-area bytes, and per-packet overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..netsim.addressing import IPAddress
from ..netsim.node import Node
from ..netsim.packet import IPProto, Packet
from ..transport.sockets import TransportStack
from ..transport.udp import UDPDatagram

if TYPE_CHECKING:  # pragma: no cover
    from ..mobileip.tunnel import TunnelEndpoint

__all__ = ["MulticastSource", "MulticastReceiver", "HomeTunnelRelay"]

STREAM_PORT = 5004  # RTP-ish


class MulticastSource:
    """Streams ``count`` packets of ``payload_size`` bytes to a group."""

    def __init__(
        self,
        stack: TransportStack,
        group: IPAddress,
        count: int = 50,
        interval: float = 0.1,
        payload_size: int = 500,
    ):
        group = IPAddress(group)
        if not group.is_multicast:
            raise ValueError(f"{group} is not a multicast group")
        self.stack = stack
        self.group = group
        self.count = count
        self.interval = interval
        self.payload_size = payload_size
        self._socket = stack.udp_socket()
        self.sent = 0

    def start(self) -> None:
        self._tick()

    def _tick(self) -> None:
        if self.sent >= self.count:
            return
        self.sent += 1
        self._socket.sendto(
            ("frame", self.sent), self.payload_size, self.group, STREAM_PORT
        )
        self.stack.schedule(self.interval, self._tick, label="mcast-src")


class MulticastReceiver:
    """Joins a group on its node's local interface and counts arrivals."""

    def __init__(self, stack: TransportStack, group: IPAddress):
        self.stack = stack
        self.group = IPAddress(group)
        stack.node.join_multicast(self.group)
        self._socket = stack.udp_socket(STREAM_PORT)
        self._socket.on_receive(self._stream_input)
        self.received = 0
        self.bytes_received = 0

    def _stream_input(
        self, data: object, size: int, src_ip: IPAddress, src_port: int
    ) -> None:
        self.received += 1
        self.bytes_received += size

    def leave(self) -> None:
        self.stack.node.leave_multicast(self.group)


class HomeTunnelRelay:
    """Joins the group at home and re-tunnels the stream to the MH.

    This is what "joining through the virtual interface on the distant
    home network" costs: every stream packet crosses the wide area
    inside a unicast tunnel, with encapsulation overhead on top.
    """

    def __init__(self, node: Node, tunnel: "TunnelEndpoint", group: IPAddress):
        self.node = node
        self.tunnel = tunnel
        self.group = IPAddress(group)
        self.target: Optional[IPAddress] = None
        node.join_multicast(self.group)
        self._prior_udp_handler = node.proto_handlers.get(IPProto.UDP)
        node.register_proto_handler(IPProto.UDP, self._udp_input)
        self.relayed = 0

    def relay_to(self, care_of: IPAddress) -> None:
        self.target = IPAddress(care_of)

    def _udp_input(self, packet: Packet) -> None:
        if packet.dst == self.group and self.target is not None:
            datagram = packet.payload
            if isinstance(datagram, UDPDatagram) and datagram.dst_port == STREAM_PORT:
                self.relayed += 1
                source = self.node._preferred_source()
                assert source is not None
                self.tunnel.send_encapsulated(packet, source, self.target)
                return
        if self._prior_udp_handler is not None:
            self._prior_udp_handler(packet)
