"""The experiment layer: declarative runs, one lifecycle, parallel sweeps.

* :mod:`repro.experiment.spec` — :class:`ExperimentSpec`, a validated
  JSON-serializable description of one run (world knobs, traffic
  program, fault plan, adversary schedule, arming, seed);
* :mod:`repro.experiment.runner` — :class:`Runner`, the canonical
  build → arm → drive → collect sequence, returning a plain-data
  :class:`RunResult`;
* :mod:`repro.experiment.sweep` — :class:`SpecGrid` expansion and the
  :class:`SweepExecutor` that fans runs out across worker processes
  with byte-identical-to-serial per-run trace digests.

See docs/ARCHITECTURE.md §10.
"""

from .cache import CACHE_SALT, ResultCache, default_cache_dir, spec_digest
from .runner import Driver, Runner, RunResult
from .spec import (
    ADVERSARY_KINDS,
    ExperimentSpec,
    SpecError,
    TrafficProgram,
    canonical_traffic_spec,
)
from .sweep import (
    SpecGrid,
    SweepExecutor,
    SweepResult,
    aggregate_fast_forward,
    demo_grid,
)

__all__ = [
    "ADVERSARY_KINDS",
    "CACHE_SALT",
    "Driver",
    "aggregate_fast_forward",
    "ExperimentSpec",
    "ResultCache",
    "Runner",
    "RunResult",
    "SpecError",
    "SpecGrid",
    "SweepExecutor",
    "SweepResult",
    "TrafficProgram",
    "canonical_traffic_spec",
    "default_cache_dir",
    "demo_grid",
    "spec_digest",
]
