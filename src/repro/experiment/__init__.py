"""The experiment layer: declarative runs, one lifecycle, parallel sweeps.

* :mod:`repro.experiment.spec` — :class:`ExperimentSpec`, a validated
  JSON-serializable description of one run (world knobs, traffic
  program, fault plan, adversary schedule, arming, seed);
* :mod:`repro.experiment.runner` — :class:`Runner`, the canonical
  build → arm → drive → collect sequence, returning a plain-data
  :class:`RunResult`;
* :mod:`repro.experiment.sweep` — :class:`SpecGrid` expansion and the
  :class:`SweepExecutor` that fans runs out across worker processes
  with byte-identical-to-serial per-run trace digests;
* :mod:`repro.experiment.supervise` — the fault-tolerant worker
  backend: :class:`WorkerSupervisor` (timeouts, crash requeue, retry,
  quarantine) and :class:`SweepCheckpoint` (crash-safe resume journal).

See docs/ARCHITECTURE.md §10 and §14.
"""

from .cache import CACHE_SALT, ResultCache, default_cache_dir, spec_digest
from .runner import Driver, Runner, RunResult
from .spec import (
    ADVERSARY_KINDS,
    ExperimentSpec,
    SpecError,
    TrafficProgram,
    canonical_traffic_spec,
)
from .supervise import (
    FAULT_ENV,
    CellFailedError,
    SweepCheckpoint,
    WorkerSupervisor,
    maybe_inject_fault,
)
from .sweep import (
    SpecGrid,
    SweepExecutor,
    SweepResult,
    aggregate_fast_forward,
    demo_grid,
    failed_result,
)

__all__ = [
    "ADVERSARY_KINDS",
    "CACHE_SALT",
    "CellFailedError",
    "Driver",
    "FAULT_ENV",
    "aggregate_fast_forward",
    "ExperimentSpec",
    "ResultCache",
    "Runner",
    "RunResult",
    "SpecError",
    "SpecGrid",
    "SweepCheckpoint",
    "SweepExecutor",
    "SweepResult",
    "TrafficProgram",
    "WorkerSupervisor",
    "canonical_traffic_spec",
    "default_cache_dir",
    "demo_grid",
    "failed_result",
    "maybe_inject_fault",
    "spec_digest",
]
