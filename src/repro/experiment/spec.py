"""Declarative experiment descriptions.

An :class:`ExperimentSpec` is a JSON-serializable, validated
description of exactly one run: the world knobs that
:func:`repro.analysis.scenarios.build_scenario` understands (awareness,
security posture, encapsulation, probe strategy, topology distances),
a traffic program, an optional :class:`~repro.netsim.faults.FaultPlan`,
an optional adversary schedule, the observability/invariant arming
switches, and the seed.  Every driver in the tree — the CLI
subcommands, the chaos harness, the fuzzer, the benchmarks, the sweep
executor — describes its world as a spec and hands it to
:class:`repro.experiment.runner.Runner`.

Being plain data is the point: a spec round-trips through JSON
(``to_json``/``from_json``), crosses process boundaries for parallel
sweeps, lands inside fuzz repro files so a shrunken failure replays
with ``repro-mobility sweep --spec repro.json``, and fails loudly at
*parse* time (:class:`SpecError`) instead of forty simulated seconds
into a run.

Validation is kept honest against the scenario builder itself:
``scenario_kwargs()`` may only produce keyword arguments named in
:data:`repro.analysis.scenarios.SCENARIO_KNOBS`, which is derived from
``build_scenario``'s real signature — the spec cannot silently drift
from the builder.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.scenarios import SCENARIO_KNOBS
from ..core.selection import ProbeStrategy
from ..mobileip.correspondent import Awareness
from ..netsim.encap import EncapScheme
from ..netsim.faults import FaultError, FaultPlan

__all__ = [
    "SpecError",
    "TrafficProgram",
    "ExperimentSpec",
    "canonical_traffic_spec",
    "ADVERSARY_KINDS",
]

ADVERSARY_KINDS = ("spoof", "replay", "bogus", "truncated")
_DIRECTIONS = ("mh->ch", "ch->mh")
_PAYLOAD_STYLES = ("plain", "indexed")

# The canonical scenario-traffic workload (the golden trace, the
# scenario_traffic benchmark, `repro-mobility obs`): 200 datagrams,
# 10ms apart, correspondent -> mobile home address.
CANONICAL_SEED = 1401
CANONICAL_DATAGRAMS = 200
CANONICAL_SPACING = 0.01
CANONICAL_PORT = 7000


class SpecError(ValueError):
    """A malformed experiment spec."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


@dataclass
class TrafficProgram:
    """A deterministic UDP traffic schedule between CH and MH.

    Two shapes, exactly one of which may be set:

    * ``events`` — an explicit list of ``{"at", "direction", "size"}``
      datagram events (times relative to the post-settle clock);
    * ``uniform`` — ``{"datagrams", "spacing", "size", "direction"}``,
      expanded on demand (keeps grid JSON small).

    ``ch_bind`` selects the two socket disciplines in the tree: the
    canonical workload binds the mobile host at ``port`` and sends from
    an ephemeral correspondent socket; the fuzzer binds both ends at
    ``port``.  ``payload_style`` picks the legacy payloads ("plain" is
    the canonical ``"x"``, "indexed" is the fuzzer's ``("fuzz", i)``).
    Both knobs exist so that a spec-driven run reproduces the exact
    trace bytes of the hand-rolled loop it replaced.
    """

    port: int = CANONICAL_PORT
    ch_bind: bool = False
    payload_style: str = "plain"
    events: List[Dict[str, Any]] = field(default_factory=list)
    uniform: Optional[Dict[str, Any]] = None
    # Mobile-side endpoint override: the name of another node to use in
    # place of the scenario's ``mh``.  A name belonging to a pooled
    # host (``mega-h{i}``, see repro.netsim.population) promotes it to
    # a full node at arm time — the "traffic targets a pooled host"
    # expansion path.
    target: Optional[str] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        _require(_is_int(self.port) and 1 <= self.port <= 65535,
                 f"traffic port must be 1..65535, got {self.port!r}")
        _require(isinstance(self.ch_bind, bool),
                 f"traffic ch_bind must be a bool, got {self.ch_bind!r}")
        _require(self.payload_style in _PAYLOAD_STYLES,
                 f"traffic payload_style must be one of {_PAYLOAD_STYLES}, "
                 f"got {self.payload_style!r}")
        _require(self.target is None
                 or (isinstance(self.target, str) and self.target),
                 f"traffic target must be a non-empty node name or null, "
                 f"got {self.target!r}")
        _require(not (self.events and self.uniform),
                 "traffic takes either explicit events or a uniform "
                 "program, not both")
        _require(isinstance(self.events, list),
                 f"traffic events must be a list, got {self.events!r}")
        for event in self.events:
            _require(isinstance(event, dict),
                     f"traffic event must be an object, got {event!r}")
            unknown = set(event) - {"at", "direction", "size"}
            _require(not unknown,
                     f"traffic event has unknown fields {sorted(unknown)}")
            _require(_is_number(event.get("at")) and event["at"] >= 0,
                     f"traffic event needs 'at' >= 0, got {event.get('at')!r}")
            _require(event.get("direction") in _DIRECTIONS,
                     f"traffic direction must be one of {_DIRECTIONS}, "
                     f"got {event.get('direction')!r}")
            _require(_is_int(event.get("size")) and event["size"] > 0,
                     f"traffic event needs a positive int 'size', "
                     f"got {event.get('size')!r}")
        if self.uniform is not None:
            _require(isinstance(self.uniform, dict),
                     f"traffic uniform must be an object, got {self.uniform!r}")
            unknown = set(self.uniform) - {
                "datagrams", "spacing", "size", "direction"}
            _require(not unknown,
                     f"traffic uniform has unknown fields {sorted(unknown)}")
            datagrams = self.uniform.get("datagrams")
            _require(_is_int(datagrams) and datagrams > 0,
                     f"traffic uniform needs a positive int 'datagrams', "
                     f"got {datagrams!r}")
            spacing = self.uniform.get("spacing", CANONICAL_SPACING)
            _require(_is_number(spacing) and spacing >= 0,
                     f"traffic uniform spacing must be >= 0, got {spacing!r}")
            size = self.uniform.get("size", 100)
            _require(_is_int(size) and size > 0,
                     f"traffic uniform size must be a positive int, "
                     f"got {size!r}")
            direction = self.uniform.get("direction", "ch->mh")
            _require(direction in _DIRECTIONS + ("both",),
                     f"traffic uniform direction must be one of "
                     f"{_DIRECTIONS + ('both',)}, got {direction!r}")

    def resolved_events(self) -> List[Dict[str, Any]]:
        """The concrete datagram schedule (expands ``uniform``)."""
        if self.uniform is None:
            return list(self.events)
        spacing = self.uniform.get("spacing", CANONICAL_SPACING)
        size = self.uniform.get("size", 100)
        direction = self.uniform.get("direction", "ch->mh")
        # "both" alternates: even indices ch->mh, odd indices mh->ch,
        # so one uniform program exercises the full in/out mode grid.
        return [
            {
                "at": index * spacing,
                "direction": (
                    ("ch->mh" if index % 2 == 0 else "mh->ch")
                    if direction == "both" else direction
                ),
                "size": size,
            }
            for index in range(self.uniform["datagrams"])
        ]

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrafficProgram":
        _require(isinstance(data, dict),
                 f"traffic must be an object, got {data!r}")
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        _require(not unknown,
                 f"traffic has unknown fields {sorted(unknown)}")
        return cls(**data)


@dataclass
class ExperimentSpec:
    """One run of the reproduction, as validated plain data."""

    # Identity
    seed: int = 1996
    label: str = ""
    # Drive window.  ``absolute=False`` runs for ``duration +
    # settle_margin`` seconds past the post-settle clock (the fuzzer's
    # discipline); ``absolute=True`` runs until absolute simulation
    # time ``duration`` (the chaos harness's discipline).
    duration: float = 30.0
    settle_margin: float = 0.0
    absolute: bool = False
    # World knobs (mirroring build_scenario; see scenario_kwargs()).
    awareness: Optional[str] = Awareness.CONVENTIONAL.value
    ch_in_visited_lan: bool = False
    home_filtering: bool = True
    visited_filtering: bool = True
    ch_filtering: bool = False
    strategy: str = ProbeStrategy.RULE_SEEDED.value
    encap: str = EncapScheme.IPIP.value
    backbone_size: int = 5
    home_attach: int = 0
    visited_attach: Optional[int] = None
    ch_attach: int = 2
    backbone_latency: float = 0.010
    privacy: bool = False
    notify_correspondents: bool = False
    with_dns: bool = False
    with_foreign_agent: bool = False
    mobile_starts_away: bool = True
    trace_entries: bool = True
    trace_aggregates: bool = True
    fast_forward: bool = True
    auth_key: Optional[str] = None
    # Link contention (see repro.netsim.link.Segment): a global bounded
    # transmit-queue depth, per-segment depth overrides, and per-segment
    # bandwidth overrides.  All default off — the historical
    # infinite-capacity links, digest-neutral.
    queue_capacity: Optional[int] = None
    queue_capacities: Optional[Dict[str, int]] = None
    link_bandwidths: Optional[Dict[str, float]] = None
    # Flyweight host population (see repro.netsim.population):
    # {"hosts": N, "domains": D, "mode": "pooled"|"materialized",
    #  "lifetime": secs, "wheel_buckets": B}.  None — the default —
    # builds the historical world, digest-identical.
    population: Optional[Dict[str, Any]] = None
    # Programs
    traffic: Optional[TrafficProgram] = None
    faults: Optional[Dict[str, Any]] = None        # FaultPlan.to_dict()
    adversary: List[Dict[str, Any]] = field(default_factory=list)
    # Arming
    observe: bool = False
    obs_cadence: Optional[float] = 0.5
    arm_invariants: bool = False
    max_tunnel_depth: Optional[int] = None
    invariant_grace: Optional[float] = None

    def __post_init__(self) -> None:
        if isinstance(self.traffic, dict):
            self.traffic = TrafficProgram.from_dict(self.traffic)
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        _require(_is_int(self.seed), f"seed must be an int, got {self.seed!r}")
        _require(isinstance(self.label, str),
                 f"label must be a string, got {self.label!r}")
        _require(_is_number(self.duration) and self.duration > 0,
                 f"duration must be > 0, got {self.duration!r}")
        _require(_is_number(self.settle_margin) and self.settle_margin >= 0,
                 f"settle_margin must be >= 0, got {self.settle_margin!r}")
        if self.awareness is not None:
            try:
                Awareness(self.awareness)
            except ValueError:
                valid = sorted(a.value for a in Awareness)
                raise SpecError(
                    f"unknown awareness {self.awareness!r} (valid: {valid}, "
                    f"or null for no correspondent)") from None
        try:
            ProbeStrategy(self.strategy)
        except ValueError:
            valid = sorted(s.value for s in ProbeStrategy)
            raise SpecError(
                f"unknown strategy {self.strategy!r} (valid: {valid})"
            ) from None
        try:
            EncapScheme(self.encap)
        except ValueError:
            valid = sorted(e.value for e in EncapScheme)
            raise SpecError(
                f"unknown encap {self.encap!r} (valid: {valid})") from None
        _require(_is_int(self.backbone_size) and self.backbone_size >= 2,
                 f"backbone_size must be an int >= 2, "
                 f"got {self.backbone_size!r}")
        for name in ("home_attach", "ch_attach"):
            value = getattr(self, name)
            _require(_is_int(value) and 0 <= value < self.backbone_size,
                     f"{name} must be in 0..{self.backbone_size - 1}, "
                     f"got {value!r}")
        if self.visited_attach is not None:
            _require(_is_int(self.visited_attach)
                     and 0 <= self.visited_attach < self.backbone_size,
                     f"visited_attach must be in 0..{self.backbone_size - 1}, "
                     f"got {self.visited_attach!r}")
        _require(_is_number(self.backbone_latency)
                 and self.backbone_latency >= 0,
                 f"backbone_latency must be >= 0, "
                 f"got {self.backbone_latency!r}")
        _require(self.auth_key is None or isinstance(self.auth_key, str),
                 f"auth_key must be a string or null, got {self.auth_key!r}")
        for name in ("ch_in_visited_lan", "home_filtering",
                     "visited_filtering", "ch_filtering", "privacy",
                     "notify_correspondents", "with_dns",
                     "with_foreign_agent", "mobile_starts_away",
                     "trace_entries", "trace_aggregates", "fast_forward",
                     "absolute", "observe", "arm_invariants"):
            value = getattr(self, name)
            _require(isinstance(value, bool),
                     f"{name} must be a bool, got {value!r}")
        if self.traffic is not None:
            self.traffic.validate()
            _require(self.awareness is not None,
                     "a traffic program needs a correspondent "
                     "(awareness must not be null)")
        if self.faults is not None:
            try:
                FaultPlan.from_dict(self.faults)
            except FaultError as exc:
                raise SpecError(f"invalid fault plan: {exc}") from None
        _require(isinstance(self.adversary, list),
                 f"adversary must be a list, got {self.adversary!r}")
        for event in self.adversary:
            _require(isinstance(event, dict),
                     f"adversary event must be an object, got {event!r}")
            unknown = set(event) - {"at", "kind"}
            _require(not unknown,
                     f"adversary event has unknown fields {sorted(unknown)}")
            _require(_is_number(event.get("at")) and event["at"] >= 0,
                     f"adversary event needs 'at' >= 0, "
                     f"got {event.get('at')!r}")
            _require(event.get("kind") in ADVERSARY_KINDS,
                     f"adversary kind must be one of {ADVERSARY_KINDS}, "
                     f"got {event.get('kind')!r}")
        if self.obs_cadence is not None:
            _require(_is_number(self.obs_cadence) and self.obs_cadence > 0,
                     f"obs_cadence must be > 0 or null, "
                     f"got {self.obs_cadence!r}")
        if self.max_tunnel_depth is not None:
            _require(_is_int(self.max_tunnel_depth)
                     and self.max_tunnel_depth >= 0,
                     f"max_tunnel_depth must be an int >= 0, "
                     f"got {self.max_tunnel_depth!r}")
        if self.invariant_grace is not None:
            _require(_is_number(self.invariant_grace)
                     and self.invariant_grace >= 0,
                     f"invariant_grace must be >= 0, "
                     f"got {self.invariant_grace!r}")
        if self.population is not None:
            from ..netsim.population import validate_population

            try:
                validate_population(self.population)
            except ValueError as exc:
                raise SpecError(str(exc)) from None
        if self.queue_capacity is not None:
            _require(_is_int(self.queue_capacity)
                     and self.queue_capacity >= 0,
                     f"queue_capacity must be an int >= 0 or null, "
                     f"got {self.queue_capacity!r}")
        if self.queue_capacities is not None:
            _require(isinstance(self.queue_capacities, dict),
                     f"queue_capacities must be an object, "
                     f"got {self.queue_capacities!r}")
            for name, capacity in self.queue_capacities.items():
                _require(isinstance(name, str),
                         f"queue_capacities keys must be segment names, "
                         f"got {name!r}")
                _require(_is_int(capacity) and capacity >= 0,
                         f"queue_capacities[{name!r}] must be an int >= 0, "
                         f"got {capacity!r}")
        if self.link_bandwidths is not None:
            _require(isinstance(self.link_bandwidths, dict),
                     f"link_bandwidths must be an object, "
                     f"got {self.link_bandwidths!r}")
            for name, bandwidth in self.link_bandwidths.items():
                _require(isinstance(name, str),
                         f"link_bandwidths keys must be segment names, "
                         f"got {name!r}")
                _require(_is_number(bandwidth) and bandwidth > 0,
                         f"link_bandwidths[{name!r}] must be > 0, "
                         f"got {bandwidth!r}")

    # ------------------------------------------------------------------
    # The bridge to the scenario builder
    # ------------------------------------------------------------------
    def scenario_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for :func:`build_scenario`, exactly."""
        kwargs: Dict[str, Any] = {
            "seed": self.seed,
            "backbone_size": self.backbone_size,
            "home_attach": self.home_attach,
            "visited_attach": self.visited_attach,
            "ch_attach": self.ch_attach,
            "ch_awareness": (
                None if self.awareness is None else Awareness(self.awareness)
            ),
            "ch_in_visited_lan": self.ch_in_visited_lan,
            "home_filtering": self.home_filtering,
            "visited_filtering": self.visited_filtering,
            "ch_filtering": self.ch_filtering,
            "strategy": ProbeStrategy(self.strategy),
            "scheme": EncapScheme(self.encap),
            "privacy": self.privacy,
            "notify_correspondents": self.notify_correspondents,
            "with_dns": self.with_dns,
            "with_foreign_agent": self.with_foreign_agent,
            "mobile_starts_away": self.mobile_starts_away,
            "backbone_latency": self.backbone_latency,
            "trace_entries": self.trace_entries,
            "trace_aggregates": self.trace_aggregates,
            "fast_forward": self.fast_forward,
            "auth_key": self.auth_key,
            "queue_capacity": self.queue_capacity,
            "queue_capacities": self.queue_capacities,
            "link_bandwidths": self.link_bandwidths,
            "population": self.population,
        }
        stray = set(kwargs) - SCENARIO_KNOBS
        if stray:  # pragma: no cover - a drift bug, caught by tests
            raise SpecError(
                f"spec produced kwargs build_scenario does not take: "
                f"{sorted(stray)}")
        return kwargs

    def fault_plan(self) -> Optional[FaultPlan]:
        return None if self.faults is None else FaultPlan.from_dict(self.faults)

    def invariant_kwargs(self) -> Dict[str, Any]:
        kwargs: Dict[str, Any] = {}
        if self.max_tunnel_depth is not None:
            kwargs["max_tunnel_depth"] = self.max_tunnel_depth
        if self.invariant_grace is not None:
            kwargs["grace"] = self.invariant_grace
        return kwargs

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        if self.traffic is None:
            data["traffic"] = None
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        _require(isinstance(data, dict),
                 f"experiment spec must be an object, got {data!r}")
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        _require(not unknown,
                 f"experiment spec has unknown fields {sorted(unknown)}")
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid spec JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "ExperimentSpec":
        """Load a spec from a file.

        Accepts either a bare spec object or a fuzz repro file (the
        spec lives under its ``"spec"`` key), so a shrunken fuzz
        failure replays directly: ``sweep --spec repro.json``.
        """
        with open(path) as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise SpecError(f"{path}: invalid JSON: {exc}") from None
        _require(isinstance(payload, dict),
                 f"{path}: expected a JSON object")
        if "spec" in payload and "seed" not in payload:
            payload = payload["spec"]
        return cls.from_dict(payload)

    def replace(self, **changes: Any) -> "ExperimentSpec":
        """A copy with ``changes`` applied (re-validated)."""
        data = self.to_dict()
        data.update(changes)
        return ExperimentSpec.from_dict(data)


def canonical_traffic_spec(
    seed: int = CANONICAL_SEED,
    datagrams: int = CANONICAL_DATAGRAMS,
    **changes: Any,
) -> ExperimentSpec:
    """The canonical scenario-traffic workload as a spec.

    This is the exact world the golden-trace digest is pinned on:
    conventional correspondent, default posture, ``datagrams`` UDP
    sends 10ms apart to the mobile host's home address, 30 simulated
    seconds.  ``Runner`` on this spec reproduces the legacy
    hand-rolled loop byte-for-byte.
    """
    spec = ExperimentSpec(
        seed=seed,
        duration=30.0,
        settle_margin=0.0,
        traffic=TrafficProgram(
            port=CANONICAL_PORT,
            uniform={"datagrams": datagrams, "spacing": CANONICAL_SPACING,
                     "size": 100, "direction": "ch->mh"},
        ),
    )
    return spec.replace(**changes) if changes else spec
