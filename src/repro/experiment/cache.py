"""Spec-digest result cache: memoize deterministic runs on disk.

An :class:`~repro.experiment.spec.ExperimentSpec` is JSON-canonical
and the :class:`~repro.experiment.runner.Runner` is seed-deterministic,
so a run's entire :class:`~repro.experiment.runner.RunResult` is a pure
function of the spec's content.  :class:`ResultCache` exploits that:
the cache key is the SHA-256 of the spec's canonical JSON plus a
code-version salt (:data:`CACHE_SALT`), and the value is the result's
``to_dict()`` payload.

Layout on disk (default ``~/.cache/repro-mobility/``, honouring
``XDG_CACHE_HOME``; override per call site or with the sweep CLI's
``--cache-dir``)::

    <root>/<key[:2]>/<key>.json   one result per entry, fanned out
    <root>/index.jsonl            append-only log of stores

Every entry embeds the salt; an entry whose salt does not match the
running code (or that fails to parse) is counted as an *invalidation*,
deleted, and treated as a miss — so bumping :data:`CACHE_SALT` when
run-visible behaviour changes retires the entire cache lazily, with no
migration step.

The cache must be **bypassed** whenever the bytes under measurement are
the point: benchmark timings, determinism checks comparing serial vs
parallel sweeps, and any run whose code is suspected of differing from
the salt.  Wire it explicitly (``SweepExecutor(cache=...)``,
``run_fuzz(cache=...)``); nothing in the library caches behind your
back.  Counters (hits/misses/invalidations/stores/bytes) are exposed
via :meth:`ResultCache.stats` and can be surfaced as a
:mod:`repro.obs.metrics` family with :meth:`ResultCache.register_metrics`.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from .runner import RunResult
from .spec import ExperimentSpec

__all__ = ["CACHE_SALT", "ResultCache", "default_cache_dir", "spec_digest"]

# Code-version salt folded into every cache key.  Bump whenever a
# change alters what any spec *produces* (trace format, digest line,
# metrics shape, invariant semantics...) so stale entries self-retire.
CACHE_SALT = "repro-mobility-cache-v4"


def default_cache_dir() -> str:
    """``$XDG_CACHE_HOME/repro-mobility`` or ``~/.cache/repro-mobility``."""
    base = os.environ.get("XDG_CACHE_HOME")
    if not base:
        base = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-mobility")


def spec_digest(spec: ExperimentSpec, salt: Optional[str] = None) -> str:
    """SHA-256 of the spec's canonical JSON plus the code salt."""
    if salt is None:
        salt = CACHE_SALT
    canonical = json.dumps(
        spec.to_dict(), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(canonical.encode())
    digest.update(b"\x00")
    digest.update(salt.encode())
    return digest.hexdigest()


class ResultCache:
    """On-disk memo of :class:`RunResult` keyed by spec content digest."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.stores = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def key_for(self, spec: ExperimentSpec) -> str:
        return spec_digest(spec)

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.jsonl")

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def lookup(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """Return the cached result for ``spec``, or ``None`` on miss.

        A present-but-unusable entry (salt mismatch, corrupt JSON) is
        deleted, counted as an invalidation, and reported as a miss.
        """
        key = self.key_for(spec)
        path = self._entry_path(key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw)
            if payload.get("salt") != CACHE_SALT:
                raise ValueError("salt mismatch")
            result = RunResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.invalidations += 1
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        self.bytes_read += len(raw)
        return result

    def store(self, spec: ExperimentSpec, result: RunResult) -> None:
        """Persist ``result`` under ``spec``'s digest and log it.

        Failed (quarantined) results are never cached: a failure is an
        environmental accident, not a pure function of the spec, and a
        resumed or retried sweep must re-run the cell.
        """
        if result.failure is not None:
            return
        key = self.key_for(spec)
        path = self._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "salt": CACHE_SALT,
            "key": key,
            "result": result.to_dict(),
        }
        encoded = json.dumps(payload, sort_keys=True).encode()
        # Write-then-rename so a crashed writer never leaves a torn
        # entry that a later lookup would count as an invalidation.
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(encoded)
        os.replace(tmp, path)
        self.stores += 1
        self.bytes_written += len(encoded)
        index_line = json.dumps(
            {
                "key": key,
                "label": result.label,
                "seed": result.seed,
                "digest": result.digest,
                "bytes": len(encoded),
            },
            sort_keys=True,
        )
        # Single O_APPEND write of one complete line (the ledger's
        # durability discipline): concurrent sweeps sharing a cache dir
        # interleave whole lines, never torn ones, and a killed writer
        # leaves at most one torn trailing line for read_index to skip.
        fd = os.open(
            self.index_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, (index_line + "\n").encode())
        finally:
            os.close(fd)

    def read_index(self) -> tuple:
        """All parseable index entries, plus the torn/invalid line count.

        Append-only JSONL written under concurrency: skip (and count)
        anything that does not parse rather than failing.
        """
        entries = []
        torn = 0
        try:
            handle = open(self.index_path)
        except OSError:
            return [], 0
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:
                    torn += 1
        return entries, torn

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def register_metrics(self, registry: Any) -> None:
        """Expose the counters as a ``result_cache`` metrics family.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry`;
        the family reads live, so one registration tracks the cache for
        its whole lifetime.
        """
        registry.family(
            "result_cache",
            lambda: {k: float(v) for k, v in self.stats().items()},
        )
