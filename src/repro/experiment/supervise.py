"""Supervised sweep workers: timeouts, retries, quarantine, checkpoints.

The anonymous ``multiprocessing.Pool`` the sweep executor started with
had production-hostile failure modes: one worker exception aborted the
whole sweep, a hung cell hung it forever, and an OOM-killed worker
raised ``BrokenProcessPool`` and discarded every in-flight result.
:class:`WorkerSupervisor` replaces it with explicit ``spawn``-context
worker processes that **pull** cells one at a time — an idle worker is
handed the next ready cell, so a long cell never serializes queued
work behind it — under a parent supervision loop that owns the failure
policy:

* **timeout** — a cell that exceeds ``cell_timeout`` wall-clock
  seconds gets its worker SIGKILLed; the worker is respawned and the
  cell is retried.
* **crash** — a worker that dies mid-cell (segfault, OOM kill, an
  injected ``os.kill``) is detected via its process sentinel; the
  in-flight cell is requeued and a replacement worker spawned.
* **exception** — a worker catches the cell's exception and reports it
  as data; the worker itself survives and pulls the next cell.
* **bounded retries** — every failure re-queues the cell with
  exponential backoff (``retry_backoff * 2**(attempt-1)`` seconds)
  until ``max_retries`` retries are spent.
* **quarantine** — a cell that is still failing after its last retry
  is emitted as a ``failed`` event carrying the reason and the full
  failure history, and the sweep *continues*.  ``--strict-cells``
  (``max_retries=0`` + raising on the first ``failed`` event) restores
  fail-fast.

Every worker has its own task and result pipes (single writer each),
so SIGKILLing one can never corrupt a lock another worker needs — the
shared-``Queue`` hazard that makes pools unkillable.

:class:`SweepCheckpoint` journals completed cells as JSONL keyed by
the **unsalted** spec content digest (one ``os.write`` of one complete
line on an ``O_APPEND`` descriptor, the ledger's durability
discipline), so ``repro-mobility sweep --resume PATH`` can skip
already-completed cells after a crash or SIGKILL.  Unsalted is a
deliberate trade: a checkpoint survives code changes, so resume across
versions replays old bytes — the salted result cache is the layer that
invalidates on code change, and the two compose.

Fault injection for tests and drills rides the :data:`FAULT_ENV`
environment variable: ``kind:label[:times]`` directives (separated by
``;``) make the worker executing the named cell ``crash`` (SIGKILL
itself), ``hang`` (sleep until the timeout reaps it), or ``fail``
(raise :class:`InjectedFault`) while ``attempt < times`` — so
``crash:cell-a`` fails once then succeeds on retry, and
``fail:cell-b:99`` is a poison cell that quarantines.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "CHECKPOINT_SCHEMA",
    "FAULT_ENV",
    "CellFailedError",
    "InjectedFault",
    "SweepCheckpoint",
    "WorkerSupervisor",
    "describe_exception",
    "maybe_inject_fault",
    "parse_fault_directives",
]

FAULT_ENV = "REPRO_SWEEP_FAULT"
CHECKPOINT_SCHEMA = "repro-mobility-checkpoint/v1"
_FAULT_KINDS = ("crash", "hang", "fail")
_HANG_SECONDS = 3600.0


class InjectedFault(RuntimeError):
    """Raised by a ``fail`` fault directive — a deterministic poison cell."""


class CellFailedError(RuntimeError):
    """A cell failed under ``--strict-cells`` (fail-fast) semantics."""

    def __init__(self, label: str, failure: Dict[str, Any]):
        self.label = label
        self.failure = dict(failure)
        super().__init__(
            f"cell {label!r} failed ({failure.get('reason')} after "
            f"{failure.get('attempts')} attempt(s)): "
            f"{failure.get('message')}")


# ----------------------------------------------------------------------
# Fault injection (test / drill hook)
# ----------------------------------------------------------------------
def parse_fault_directives(text: str) -> List[Any]:
    """Parse ``kind:label[:times]`` directives separated by ``;``.

    ``times`` (default 1) is how many *attempts* the fault applies to:
    the fault fires while ``attempt < times``, so the default injects
    exactly one failure and lets the retry succeed.  Labels may contain
    ``,`` and ``=`` (grid labels do); ``;`` and a trailing ``:<int>``
    are the only reserved shapes.
    """
    directives = []
    for part in (text or "").split(";"):
        part = part.strip()
        if not part:
            continue
        kind, _, rest = part.partition(":")
        kind = kind.strip()
        if kind not in _FAULT_KINDS or not rest:
            raise ValueError(
                f"bad fault directive {part!r}: expected "
                f"'{{{'|'.join(_FAULT_KINDS)}}}:label[:times]'")
        label, times = rest, 1
        head, sep, tail = rest.rpartition(":")
        if sep and tail.isdigit():
            label, times = head, int(tail)
        directives.append((kind, label, times))
    return directives


def maybe_inject_fault(
    label: str, attempt: int, env: Optional[str] = None
) -> None:
    """Apply any :data:`FAULT_ENV` directive matching ``label``.

    Called at the top of every cell execution (worker and inline).  A
    ``crash`` directive SIGKILLs the executing process, ``hang`` sleeps
    far past any sane cell timeout, ``fail`` raises
    :class:`InjectedFault`.  No directive, no cost beyond one getenv.
    """
    text = os.environ.get(FAULT_ENV) if env is None else env
    if not text:
        return
    for kind, fault_label, times in parse_fault_directives(text):
        if fault_label != (label or "") or attempt >= times:
            continue
        if kind == "fail":
            raise InjectedFault(
                f"injected failure for {label!r} (attempt {attempt})")
        if kind == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        if kind == "hang":
            time.sleep(_HANG_SECONDS)
            raise InjectedFault(
                f"injected hang for {label!r} outlived the supervisor")


def describe_exception(exc: BaseException) -> Dict[str, Any]:
    """A JSON-clean, bounded description of one exception."""
    formatted = "".join(traceback.format_exception(
        type(exc), exc, exc.__traceback__))
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": formatted[-4000:],
    }


# ----------------------------------------------------------------------
# Sweep checkpoint: crash-safe journal of completed cells
# ----------------------------------------------------------------------
class SweepCheckpoint:
    """Append-only JSONL journal of completed cells, keyed by the
    unsalted spec content digest.

    Append discipline matches :class:`~repro.obs.ledger.RunLedger`: one
    ``os.write`` of one complete line on an ``O_APPEND`` descriptor, so
    a SIGKILLed sweep tears at most the trailing line and
    :meth:`load` recovers every completed cell before it.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self.appended = 0
        self._fd: Optional[int] = None

    def _ensure_open(self) -> int:
        if self._fd is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        return self._fd

    def record(self, spec_sha256: str, result: Dict[str, Any]) -> None:
        """Journal one completed cell (its full result payload)."""
        line = json.dumps(
            {
                "schema": CHECKPOINT_SCHEMA,
                "spec_sha256": spec_sha256,
                "result": result,
            },
            sort_keys=True, separators=(",", ":"))
        os.write(self._ensure_open(), (line + "\n").encode())
        self.appended += 1

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @staticmethod
    def load(path: str) -> Any:
        """``(completed, torn)``: digest → result payload, last wins.

        A missing file is an empty checkpoint (a sweep that never got
        far enough to journal), torn/foreign lines are skipped and
        counted — same reader posture as the ledger.
        """
        completed: Dict[str, Dict[str, Any]] = {}
        torn = 0
        try:
            handle = open(path)
        except OSError:
            return {}, 0
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    torn += 1
                    continue
                if (not isinstance(record, dict)
                        or record.get("schema") != CHECKPOINT_SCHEMA
                        or not isinstance(record.get("spec_sha256"), str)
                        or not isinstance(record.get("result"), dict)):
                    torn += 1
                    continue
                completed[record["spec_sha256"]] = record["result"]
        return completed, torn


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(inbox: Any, outbox: Any) -> None:
    """One supervised worker: pull a cell, run it, report, repeat.

    Module-level so ``spawn`` pickles it by reference.  SIGINT is
    ignored — a Ctrl-C lands on the whole foreground process group, and
    the *parent* owns the drain policy; workers only die when told to
    (sentinel, SIGKILL) or by their own cell's misbehaviour.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    from .sweep import _execute_payload

    while True:
        try:
            task = inbox.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        message: Dict[str, Any] = {
            "index": task["index"],
            "dispatch_id": task["dispatch_id"],
        }
        try:
            maybe_inject_fault(task.get("label") or "", task["attempt"])
            data = _execute_payload(task["payload"])
            message["kind"] = "result"
            message["result"] = data["result"]
        except BaseException as exc:  # noqa: BLE001 - reported as data
            message["kind"] = "error"
            message["error"] = describe_exception(exc)
        try:
            outbox.send(message)
        except (BrokenPipeError, OSError):  # parent went away
            break


@dataclass
class _Task:
    """One cell's dispatch state inside the supervisor."""

    index: int
    payload: Dict[str, Any]
    label: str
    attempt: int = 0
    not_before: float = 0.0
    failures: List[Dict[str, Any]] = field(default_factory=list)


class _Worker:
    """Parent-side handle: process + its private task/result pipes."""

    def __init__(self, context: Any, worker_id: int):
        self.id = worker_id
        inbox_recv, inbox_send = context.Pipe(duplex=False)
        result_recv, result_send = context.Pipe(duplex=False)
        self.proc = context.Process(
            target=_worker_main,
            args=(inbox_recv, result_send),
            name=f"sweep-worker-{worker_id}",
            daemon=True,
        )
        self.proc.start()
        # Close the child's ends in the parent so a dead worker reads
        # as EOF instead of a silent forever-empty pipe.
        inbox_recv.close()
        result_send.close()
        self.inbox = inbox_send
        self.results = result_recv
        self.task: Optional[_Task] = None
        self.started_at = 0.0
        self.dispatch_id = -1

    def close(self) -> None:
        for conn in (self.inbox, self.results):
            try:
                conn.close()
            except OSError:
                pass

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join()
        self.close()


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------
class WorkerSupervisor:
    """Run payloads across supervised workers, yielding completion events.

    :meth:`run` is a generator of event dicts:

    * ``{"kind": "result", "index", "result", "attempts"}`` — a cell
      completed (possibly after retries).
    * ``{"kind": "retry", "index", "label", "reason", "attempt",
      "delay"}`` — a cell failed and was requeued with backoff.
    * ``{"kind": "failed", "index", "label", "failure"}`` — a cell
      exhausted its retries and is quarantined; ``failure`` carries
      ``reason`` (``exception`` / ``timeout`` / ``crash``),
      ``attempts``, ``message``, and the per-attempt ``history``.

    :meth:`request_stop` (async-signal-safe: it only sets a flag)
    starts a graceful drain: no new dispatch, in-flight cells get
    ``grace`` seconds to finish, stragglers are killed.  Cells that
    never ran are silently skipped — they are *interrupted*, not
    failed, and a resumed sweep runs them.
    """

    def __init__(
        self,
        jobs: int,
        mp_context: str = "spawn",
        cell_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        grace: float = 5.0,
        tick: float = 0.05,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.jobs = jobs
        self.mp_context = mp_context
        self.cell_timeout = cell_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.grace = grace
        self.tick = tick
        # Accounting, readable after run() finishes.
        self.retries = 0
        self.respawns = 0
        self.skipped = 0
        self.stopped = False
        self._stop_requested = False
        self._workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._next_dispatch_id = 0
        self._outstanding = 0
        self._ready: deque = deque()
        self._waiting: List[_Task] = []
        self._ctx: Any = None

    # -- control -------------------------------------------------------
    def request_stop(self) -> None:
        """Begin a graceful drain (safe to call from a signal handler)."""
        self._stop_requested = True

    # -- worker lifecycle ----------------------------------------------
    def _spawn(self) -> _Worker:
        worker = _Worker(self._ctx, self._next_worker_id)
        self._next_worker_id += 1
        self._workers[worker.id] = worker
        return worker

    def _discard(self, worker: _Worker, kill: bool = False) -> None:
        if kill:
            worker.kill()
        else:
            worker.close()
            worker.proc.join()
        self._workers.pop(worker.id, None)

    def _replenish(self) -> None:
        want = min(self.jobs, self._outstanding)
        while len(self._workers) < want:
            self.respawns += 1
            self._spawn()

    # -- failure policy ------------------------------------------------
    def _fail(
        self,
        task: _Task,
        reason: str,
        detail: Dict[str, Any],
        events: List[Dict[str, Any]],
    ) -> None:
        task.failures.append({"reason": reason, "attempt": task.attempt,
                              "detail": detail})
        message = detail.get("message") or {
            "timeout": f"cell exceeded {self.cell_timeout}s wall clock",
            "crash": f"worker died (exitcode {detail.get('exitcode')})",
        }.get(reason, reason)
        if self.stopped and task.attempt < self.max_retries:
            # Draining: a retry would never be dispatched.  The cell is
            # interrupted, not quarantined — a resume runs it afresh.
            self._outstanding -= 1
            self.skipped += 1
            return
        if task.attempt >= self.max_retries:
            self._outstanding -= 1
            events.append({
                "kind": "failed",
                "index": task.index,
                "label": task.label,
                "failure": {
                    "reason": reason,
                    "attempts": task.attempt + 1,
                    "message": message,
                    "history": list(task.failures),
                },
            })
            return
        task.attempt += 1
        delay = self.retry_backoff * (2 ** (task.attempt - 1))
        task.not_before = time.monotonic() + delay
        self._waiting.append(task)
        self.retries += 1
        events.append({
            "kind": "retry",
            "index": task.index,
            "label": task.label,
            "reason": reason,
            "attempt": task.attempt,
            "delay": delay,
        })

    # -- dispatch / collect --------------------------------------------
    def _dispatch(self, worker: _Worker, task: _Task) -> None:
        self._next_dispatch_id += 1
        worker.dispatch_id = self._next_dispatch_id
        try:
            worker.inbox.send({
                "index": task.index,
                "dispatch_id": worker.dispatch_id,
                "attempt": task.attempt,
                "label": task.label,
                "payload": task.payload,
            })
        except (BrokenPipeError, OSError):
            # The worker died before taking the cell: the cell never
            # ran, so it goes back untouched; the worker is replaced.
            self._ready.appendleft(task)
            self._discard(worker, kill=True)
            self._replenish()
            return
        worker.task = task
        worker.started_at = time.monotonic()

    def _drain_worker(
        self, worker: _Worker, events: List[Dict[str, Any]]
    ) -> None:
        while True:
            try:
                if not worker.results.poll():
                    return
                message = worker.results.recv()
            except (EOFError, OSError):
                # Torn pipe: the death sweep below owns the requeue.
                return
            task = worker.task
            if (task is None
                    or message.get("index") != task.index
                    or message.get("dispatch_id") != worker.dispatch_id):
                continue  # stale echo from a superseded dispatch
            worker.task = None
            if message["kind"] == "result":
                self._outstanding -= 1
                events.append({
                    "kind": "result",
                    "index": task.index,
                    "result": message["result"],
                    "attempts": task.attempt + 1,
                })
            else:
                self._fail(task, "exception", message["error"], events)

    def _sweep_dead(self, events: List[Dict[str, Any]]) -> None:
        for worker in list(self._workers.values()):
            if worker.proc.is_alive():
                continue
            # A finished result may still be sitting in the pipe (the
            # worker died *after* reporting); honour it before calling
            # the death a crash.
            self._drain_worker(worker, events)
            task = worker.task
            exitcode = worker.proc.exitcode
            self._discard(worker)
            if task is not None:
                worker.task = None
                self._fail(task, "crash", {
                    "exitcode": exitcode,
                    "signal": -exitcode if (exitcode or 0) < 0 else None,
                    "message": f"worker died mid-cell (exitcode {exitcode})",
                }, events)
            self._replenish()

    def _reap_timeouts(self, now: float, events: List[Dict[str, Any]]) -> None:
        if self.cell_timeout is None:
            return
        for worker in list(self._workers.values()):
            if worker.task is None:
                continue
            if now - worker.started_at < self.cell_timeout:
                continue
            # Last chance: accept a result that raced the deadline.
            self._drain_worker(worker, events)
            task = worker.task
            if task is None:
                continue
            worker.task = None
            self._discard(worker, kill=True)
            self._fail(task, "timeout", {
                "timeout_sec": self.cell_timeout,
                "message": (f"cell exceeded {self.cell_timeout}s wall "
                            "clock; worker killed"),
            }, events)
            self._replenish()

    # -- the loop ------------------------------------------------------
    def run(
        self, payloads: Sequence[Dict[str, Any]]
    ) -> Iterator[Dict[str, Any]]:
        self._ctx = multiprocessing.get_context(self.mp_context)
        self._ready = deque(
            _Task(
                index=payload["index"],
                payload=payload,
                label=(payload.get("spec") or {}).get("label") or "",
            )
            for payload in payloads
        )
        self._waiting = []
        self._outstanding = len(self._ready)
        drain_deadline: Optional[float] = None
        try:
            for _ in range(min(self.jobs, self._outstanding)):
                self._spawn()
            while self._outstanding > 0:
                events: List[Dict[str, Any]] = []
                now = time.monotonic()
                if self._stop_requested and not self.stopped:
                    self.stopped = True
                    drain_deadline = now + self.grace
                    abandoned = len(self._ready) + len(self._waiting)
                    self._outstanding -= abandoned
                    self.skipped += abandoned
                    self._ready.clear()
                    self._waiting = []
                if self.stopped:
                    in_flight = [w for w in self._workers.values()
                                 if w.task is not None]
                    if not in_flight:
                        break
                    if drain_deadline is not None and now >= drain_deadline:
                        for worker in in_flight:
                            self._outstanding -= 1
                            self.skipped += 1
                            worker.task = None
                            self._discard(worker, kill=True)
                        break
                else:
                    if self._waiting:
                        due = [t for t in self._waiting if t.not_before <= now]
                        if due:
                            self._waiting = [
                                t for t in self._waiting if t.not_before > now]
                            self._ready.extend(
                                sorted(due, key=lambda t: t.index))
                    self._replenish()
                    for worker in self._workers.values():
                        if not self._ready:
                            break
                        if worker.task is None:
                            self._dispatch(worker, self._ready.popleft())
                waitables = [w.results for w in self._workers.values()]
                waitables += [w.proc.sentinel for w in self._workers.values()]
                if waitables:
                    mp_connection.wait(waitables, timeout=self.tick)
                else:
                    time.sleep(self.tick)
                for worker in list(self._workers.values()):
                    self._drain_worker(worker, events)
                self._sweep_dead(events)
                self._reap_timeouts(time.monotonic(), events)
                for event in events:
                    yield event
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Dismiss every worker: sentinel, short join, then the axe."""
        for worker in list(self._workers.values()):
            try:
                worker.inbox.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 1.0
        for worker in list(self._workers.values()):
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join()
            worker.close()
        self._workers.clear()
