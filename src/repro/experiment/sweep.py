"""Parameter sweeps: expand a spec grid, fan runs out across processes.

The paper's central claim is that the *right* cell of the 4x4 grid
depends on network permissiveness, correspondent awareness, and what
you optimize — a cross-product of knobs.  :class:`SpecGrid` expands a
base :class:`~repro.experiment.spec.ExperimentSpec` against named axes
into a deterministic, ordered list of specs, and :class:`SweepExecutor`
runs them — inline for ``jobs=1``, or across a spawn-safe
``multiprocessing`` pool for ``jobs>1``, merging results back in spec
order.

Determinism is the contract: every run builds its own seeded
:class:`~repro.netsim.simulator.Simulator`, no state crosses runs
(trace digests already normalize away the only process-global
counters), so a parallel sweep produces **byte-identical per-run trace
digests** to the same specs run serially.  The executor only moves
plain dicts across the process boundary, which is also why specs and
results must be plain data.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs.ledger import (
    RunLedger,
    run_record,
    sweep_end_record,
    sweep_start_record,
)
from .cache import ResultCache
from .runner import Runner, RunResult
from .spec import ExperimentSpec, SpecError, TrafficProgram

__all__ = [
    "SpecGrid",
    "SweepResult",
    "SweepExecutor",
    "aggregate_fast_forward",
    "demo_grid",
]

# One per-cell completion event, delivered to SweepExecutor's progress
# callback as cells finish (in completion order, not spec order).
ProgressCallback = Callable[[Dict[str, Any]], None]


@dataclass
class SpecGrid:
    """A base spec plus axes to cross: ``{"base": {...}, "axes": {...}}``.

    Axis order (insertion order of ``axes``) fixes the expansion
    order: the last axis varies fastest, like nested for-loops.  Each
    expanded spec gets a ``label`` naming its coordinates unless the
    base already sets one.
    """

    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.base, dict):
            raise SpecError(f"grid base must be an object, got {self.base!r}")
        if not isinstance(self.axes, dict):
            raise SpecError(f"grid axes must be an object, got {self.axes!r}")
        valid = set(ExperimentSpec.__dataclass_fields__)
        for name, values in self.axes.items():
            if name not in valid:
                raise SpecError(
                    f"grid axis {name!r} is not an experiment-spec field")
            if not isinstance(values, list) or not values:
                raise SpecError(
                    f"grid axis {name!r} needs a non-empty list of values, "
                    f"got {values!r}")
        unknown = set(self.base) - valid
        if unknown:
            raise SpecError(
                f"grid base has unknown spec fields {sorted(unknown)}")

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def expand(self) -> List[ExperimentSpec]:
        """All axis combinations as validated specs, in grid order."""
        names = list(self.axes)
        specs: List[ExperimentSpec] = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            data = dict(self.base)
            data.update(zip(names, combo))
            data.setdefault(
                "label",
                ",".join(f"{n}={v}" for n, v in zip(names, combo)))
            specs.append(ExperimentSpec.from_dict(data))
        return specs

    def to_dict(self) -> Dict[str, Any]:
        return {"base": dict(self.base), "axes": dict(self.axes)}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpecGrid":
        if not isinstance(data, dict):
            raise SpecError(f"grid must be a JSON object, got {data!r}")
        unknown = set(data) - {"base", "axes"}
        if unknown:
            raise SpecError(f"grid has unknown fields {sorted(unknown)}")
        return cls(base=data.get("base", {}), axes=data.get("axes", {}))

    @classmethod
    def from_json(cls, text: str) -> "SpecGrid":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid grid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "SpecGrid":
        with open(path) as handle:
            return cls.from_json(handle.read())


@dataclass
class SweepResult:
    """Ordered results of one sweep, plus executor accounting."""

    results: List[RunResult]
    jobs: int
    elapsed: float
    # Cache counters for this sweep (None when no cache was wired).
    cache: Optional[Dict[str, int]] = None

    @property
    def runs(self) -> int:
        return len(self.results)

    @property
    def runs_per_sec(self) -> float:
        return self.runs / self.elapsed if self.elapsed > 0 else float("inf")

    @property
    def violation_count(self) -> int:
        return sum(
            r.invariants.get("violation_count", 0) for r in self.results)

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def digests(self) -> List[str]:
        return [r.digest for r in self.results]

    def flightrec_dumps(self) -> List[str]:
        """Paths of flight-recorder dumps the sweep's live runs wrote."""
        paths = []
        for result in self.results:
            info = result.extras.get("flightrec")
            if info and info.get("dumped") and info.get("path"):
                paths.append(info["path"])
        return paths

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "runs": self.runs,
            "elapsed": self.elapsed,
            "runs_per_sec": self.runs_per_sec,
            "violation_count": self.violation_count,
            "cache": self.cache,
            "flightrec_dumps": self.flightrec_dumps(),
            "results": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        cache_note = ""
        if self.cache is not None:
            cache_note = (
                f", cache {self.cache['hits']} hit(s) / "
                f"{self.cache['misses']} miss(es)")
        lines = [
            f"sweep: {self.runs} runs, jobs={self.jobs}, "
            f"{self.elapsed:.2f}s wall ({self.runs_per_sec:.2f} runs/s), "
            f"{self.violation_count} invariant violation(s)"
            f"{cache_note}",
            f"  {'label':<44} {'digest':<14} {'deliv':>6} {'drop':>5} "
            f"{'viol':>5}",
        ]
        for result in self.results:
            label = result.label or f"seed={result.seed}"
            deliverability = result.deliverability
            lines.append(
                f"  {label[:44]:<44} {result.digest[:12]:<14} "
                f"{deliverability.get('delivered', '-'):>6} "
                f"{deliverability.get('dropped', '-'):>5} "
                f"{result.invariants.get('violation_count', 0) if result.invariants.get('armed') else '-':>5}"
            )
        return "\n".join(lines)


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: indexed spec payload in, indexed result out.

    Module-level so it pickles by reference under the ``spawn`` start
    method (workers re-import :mod:`repro.experiment.sweep`).  The
    index rides along because results now stream back in *completion*
    order; the parent re-slots them into spec order.
    """
    spec = ExperimentSpec.from_dict(payload["spec"])
    runner = Runner(
        flightrec_path=payload.get("flightrec_path"),
        flightrec_limit=payload.get("flightrec_limit"),
    )
    return {"index": payload["index"], "result": runner.run(spec).to_dict()}


class SweepExecutor:
    """Run a list of specs, optionally across worker processes.

    ``jobs=1`` executes inline (no multiprocessing at all — the
    debugging and determinism baseline).  ``jobs>1`` uses a ``spawn``
    pool: spawn is the only start method that is safe everywhere
    (fork duplicates arbitrary parent state; the simulator holds
    nothing process-global that matters, but spawn proves it), and the
    workers exchange only JSON-clean dicts.  Results always come back
    in spec order regardless of completion order.

    Telemetry hooks (all optional, all parent-side):

    * ``ledger`` — a :class:`~repro.obs.ledger.RunLedger`; the sweep
      appends a ``sweep-start`` record, one ``run`` record per cell
      **as it completes** (provenance ``"cache"`` or ``"run"``), and a
      ``sweep-end`` record.  Because cells are recorded at completion
      and appends are atomic, a killed sweep leaves exactly the
      completed cells as valid JSONL.
    * ``progress`` — a callback receiving one dict per completed cell:
      completed/total, cells/sec, ETA, cache-hit rate, cumulative
      violations, plus the cell's label/digest (the CLI renders these
      to stderr behind ``--progress``).
    * ``flightrec_path`` — arm the per-run flight recorder in every
      worker; multi-cell sweeps write per-cell dumps next to the base
      path (``flightrec-007.json``).  Cache hits never re-dump: the
      postmortem belongs to the run that actually executed.
    """

    def __init__(
        self,
        jobs: int = 1,
        mp_context: str = "spawn",
        cache: Optional[ResultCache] = None,
        ledger: Optional[RunLedger] = None,
        progress: Optional[ProgressCallback] = None,
        flightrec_path: Optional[str] = None,
        flightrec_limit: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.mp_context = mp_context
        self.cache = cache
        self.ledger = ledger
        self.progress = progress
        self.flightrec_path = flightrec_path
        self.flightrec_limit = flightrec_limit

    def _cell_flightrec_path(self, index: int, total: int) -> Optional[str]:
        if self.flightrec_path is None:
            return None
        if total <= 1:
            return self.flightrec_path
        root, ext = os.path.splitext(self.flightrec_path)
        return f"{root}-{index:03d}{ext or '.json'}"

    def run(self, specs: Sequence[ExperimentSpec]) -> SweepResult:
        start = time.perf_counter()
        cache = self.cache
        ledger = self.ledger
        progress = self.progress
        total = len(specs)
        results: List[Optional[RunResult]] = [None] * total
        completed = 0
        cache_hits = 0
        violations_total = 0
        if ledger is not None:
            ledger.append(sweep_start_record(
                total=total, jobs=self.jobs, cache=cache is not None))

        def finish_cell(index: int, result: RunResult,
                        cache_hit: bool) -> None:
            # The single completion path: every cell — cached or live,
            # inline or from a worker — lands here the moment it is
            # known, so the ledger and progress stream see the sweep
            # cell-by-cell rather than at the final merge.
            nonlocal completed, cache_hits, violations_total
            results[index] = result
            completed += 1
            cache_hits += 1 if cache_hit else 0
            cell_violations = result.invariants.get("violation_count", 0)
            violations_total += cell_violations
            if ledger is not None:
                ledger.append(run_record(
                    result, provenance="cache" if cache_hit else "run"))
            if progress is not None:
                elapsed = time.perf_counter() - start
                rate = completed / elapsed if elapsed > 0 else 0.0
                progress({
                    "index": index,
                    "label": result.label,
                    "digest": result.digest,
                    "cache_hit": cache_hit,
                    "violations": cell_violations,
                    "completed": completed,
                    "total": total,
                    "elapsed": elapsed,
                    "cells_per_sec": rate,
                    "eta_sec": (total - completed) / rate if rate > 0
                    else 0.0,
                    "cache_hits": cache_hits,
                    "cache_hit_rate": cache_hits / completed,
                    "violations_total": violations_total,
                })

        # Parent-side cache lookups happen before any pool dispatch, so
        # a fully-warm grid never pays worker spawn cost.  Cached cells
        # flow through the same result list, so invariant accounting
        # (SweepResult.violation_count) sees them like live runs.
        pending: List[int] = []
        if cache is not None:
            for index, spec in enumerate(specs):
                hit = cache.lookup(spec)
                if hit is not None:
                    finish_cell(index, hit, True)
                else:
                    pending.append(index)
        else:
            pending = list(range(total))
        payloads = [
            {
                "index": index,
                "spec": specs[index].to_dict(),
                "flightrec_path": self._cell_flightrec_path(index, total),
                "flightrec_limit": self.flightrec_limit,
            }
            for index in pending
        ]

        def absorb(data: Dict[str, Any]) -> None:
            index = data["index"]
            result = RunResult.from_dict(data["result"])
            if cache is not None:
                cache.store(specs[index], result)
            finish_cell(index, result, False)

        if not payloads:
            pass
        elif self.jobs == 1 or len(payloads) <= 1:
            for payload in payloads:
                absorb(_execute_payload(payload))
        else:
            for data in self._stream_pool(payloads):
                absorb(data)
        elapsed = time.perf_counter() - start
        if ledger is not None:
            ledger.append(sweep_end_record(
                completed=completed, total=total, elapsed=elapsed,
                violation_count=violations_total,
                cache=cache.stats() if cache is not None else None))
        return SweepResult(
            results=[r for r in results if r is not None],
            jobs=self.jobs,
            elapsed=elapsed,
            cache=cache.stats() if cache is not None else None,
        )

    def _stream_pool(self, payloads: List[Dict[str, Any]]):
        import multiprocessing

        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.jobs, len(payloads))
        with context.Pool(processes=workers) as pool:
            # imap_unordered streams completions back as they happen —
            # the live-progress contract; the payload index restores
            # spec order.  chunksize=1 keeps the longest-running specs
            # from serializing behind each other.
            for data in pool.imap_unordered(
                    _execute_payload, payloads, chunksize=1):
                yield data


def aggregate_fast_forward(results: Sequence[RunResult]) -> Dict[str, int]:
    """Sum per-run fast-forward stats across a sweep's results."""
    totals = {
        "engaged_runs": 0, "replayed": 0, "captured": 0,
        "fallbacks": 0, "world_changes": 0,
    }
    for result in results:
        stats = result.extras.get("fast_forward") or {}
        for key in totals:
            totals[key] += stats.get(key, 0)
    return totals


def demo_grid(
    seeds: Optional[List[int]] = None,
    datagrams: int = 60,
) -> SpecGrid:
    """The worked 4x4-coverage sweep (see README): awareness ×
    visited-domain posture × probe strategy, crossed with seeds.

    Sixteen-plus cells of world configuration around the canonical
    traffic workload — the cross-product the paper's Figure 10
    taxonomy lives in.  Every run arms the invariant monitor, so the
    sweep doubles as a correctness gate.
    """
    base = ExperimentSpec(
        duration=30.0,
        traffic=TrafficProgram(
            uniform={"datagrams": datagrams, "spacing": 0.25,
                     "size": 100, "direction": "both"},
        ),
        arm_invariants=True,
    ).to_dict()
    del base["label"]
    return SpecGrid(
        base=base,
        axes={
            "seed": list(seeds) if seeds else [1996, 2024],
            "awareness": ["conventional", "decap-capable", "mobile-aware"],
            "visited_filtering": [True, False],
            "strategy": ["rule-seeded", "conservative-first"],
        },
    )
