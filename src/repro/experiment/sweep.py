"""Parameter sweeps: expand a spec grid, fan runs out across processes.

The paper's central claim is that the *right* cell of the 4x4 grid
depends on network permissiveness, correspondent awareness, and what
you optimize — a cross-product of knobs.  :class:`SpecGrid` expands a
base :class:`~repro.experiment.spec.ExperimentSpec` against named axes
into a deterministic, ordered list of specs, and :class:`SweepExecutor`
runs them — inline for ``jobs=1``, or across a spawn-safe
``multiprocessing`` pool for ``jobs>1``, merging results back in spec
order.

Determinism is the contract: every run builds its own seeded
:class:`~repro.netsim.simulator.Simulator`, no state crosses runs
(trace digests already normalize away the only process-global
counters), so a parallel sweep produces **byte-identical per-run trace
digests** to the same specs run serially.  The executor only moves
plain dicts across the process boundary, which is also why specs and
results must be plain data.

Fault tolerance is supervised, not hoped for: ``jobs>1`` runs cells
through :class:`~repro.experiment.supervise.WorkerSupervisor`
(per-cell wall-clock timeouts, crash requeue + worker respawn, bounded
retries with backoff, poison-cell quarantine), completed cells can be
journaled to a :class:`~repro.experiment.supervise.SweepCheckpoint`
and skipped on ``--resume``, and SIGINT/SIGTERM drain gracefully
instead of tracebacking — the interrupted sweep still merges, records,
and reports everything that finished.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs.ledger import (
    RunLedger,
    run_record,
    spec_content_digest,
    sweep_end_record,
    sweep_start_record,
)
from .cache import ResultCache
from .runner import Runner, RunResult
from .spec import ExperimentSpec, SpecError, TrafficProgram
from .supervise import (
    CellFailedError,
    SweepCheckpoint,
    WorkerSupervisor,
    describe_exception,
    maybe_inject_fault,
)

__all__ = [
    "SpecGrid",
    "SweepResult",
    "SweepExecutor",
    "aggregate_fast_forward",
    "demo_grid",
    "failed_result",
]

# One per-cell completion event, delivered to SweepExecutor's progress
# callback as cells finish (in completion order, not spec order).
ProgressCallback = Callable[[Dict[str, Any]], None]


@dataclass
class SpecGrid:
    """A base spec plus axes to cross: ``{"base": {...}, "axes": {...}}``.

    Axis order (insertion order of ``axes``) fixes the expansion
    order: the last axis varies fastest, like nested for-loops.  Each
    expanded spec gets a ``label`` naming its coordinates unless the
    base already sets one.
    """

    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.base, dict):
            raise SpecError(f"grid base must be an object, got {self.base!r}")
        if not isinstance(self.axes, dict):
            raise SpecError(f"grid axes must be an object, got {self.axes!r}")
        valid = set(ExperimentSpec.__dataclass_fields__)
        for name, values in self.axes.items():
            if name not in valid:
                raise SpecError(
                    f"grid axis {name!r} is not an experiment-spec field")
            if not isinstance(values, list) or not values:
                raise SpecError(
                    f"grid axis {name!r} needs a non-empty list of values, "
                    f"got {values!r}")
        unknown = set(self.base) - valid
        if unknown:
            raise SpecError(
                f"grid base has unknown spec fields {sorted(unknown)}")

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def expand(self) -> List[ExperimentSpec]:
        """All axis combinations as validated specs, in grid order."""
        names = list(self.axes)
        specs: List[ExperimentSpec] = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            data = dict(self.base)
            data.update(zip(names, combo))
            data.setdefault(
                "label",
                ",".join(f"{n}={v}" for n, v in zip(names, combo)))
            specs.append(ExperimentSpec.from_dict(data))
        return specs

    def to_dict(self) -> Dict[str, Any]:
        return {"base": dict(self.base), "axes": dict(self.axes)}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpecGrid":
        if not isinstance(data, dict):
            raise SpecError(f"grid must be a JSON object, got {data!r}")
        unknown = set(data) - {"base", "axes"}
        if unknown:
            raise SpecError(f"grid has unknown fields {sorted(unknown)}")
        return cls(base=data.get("base", {}), axes=data.get("axes", {}))

    @classmethod
    def from_json(cls, text: str) -> "SpecGrid":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid grid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "SpecGrid":
        with open(path) as handle:
            return cls.from_json(handle.read())


@dataclass
class SweepResult:
    """Ordered results of one sweep, plus executor accounting."""

    results: List[RunResult]
    jobs: int
    elapsed: float
    # Cache counters for this sweep (None when no cache was wired).
    cache: Optional[Dict[str, int]] = None
    # True when the sweep drained early on SIGINT/SIGTERM: results
    # hold only the cells that completed before the stop.
    interrupted: bool = False
    # Cell re-dispatches the supervisor performed (timeouts, crashes,
    # worker exceptions that later succeeded or quarantined).
    retries: int = 0

    @property
    def runs(self) -> int:
        return len(self.results)

    @property
    def runs_per_sec(self) -> float:
        # 0.0 (not inf) for a zero-elapsed sweep: float("inf") is not
        # valid JSON and would corrupt --json-out.
        return self.runs / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def violation_count(self) -> int:
        return sum(
            r.invariants.get("violation_count", 0) for r in self.results)

    @property
    def failures(self) -> List[RunResult]:
        """Quarantined cells (outcome ``failed``), in spec order."""
        return [r for r in self.results if r.failure is not None]

    @property
    def failed_count(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        return (self.violation_count == 0 and not self.failures
                and not self.interrupted)

    def digests(self) -> List[str]:
        return [r.digest for r in self.results]

    def flightrec_dumps(self) -> List[str]:
        """Paths of flight-recorder dumps the sweep's live runs wrote."""
        paths = []
        for result in self.results:
            info = result.extras.get("flightrec")
            if info and info.get("dumped") and info.get("path"):
                paths.append(info["path"])
        return paths

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "runs": self.runs,
            "elapsed": self.elapsed,
            "runs_per_sec": self.runs_per_sec,
            "violation_count": self.violation_count,
            "failed": self.failed_count,
            "retries": self.retries,
            "interrupted": self.interrupted,
            "cache": self.cache,
            "flightrec_dumps": self.flightrec_dumps(),
            "failures": [
                {
                    "label": r.label,
                    "seed": r.seed,
                    **(r.failure or {}),
                }
                for r in self.failures
            ],
            "results": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        cache_note = ""
        if self.cache is not None:
            cache_note = (
                f", cache {self.cache['hits']} hit(s) / "
                f"{self.cache['misses']} miss(es)")
        failure_note = (
            f", {self.failed_count} quarantined" if self.failed_count else "")
        retry_note = f", {self.retries} retry(ies)" if self.retries else ""
        lines = [
            f"sweep: {self.runs} runs, jobs={self.jobs}, "
            f"{self.elapsed:.2f}s wall ({self.runs_per_sec:.2f} runs/s), "
            f"{self.violation_count} invariant violation(s)"
            f"{failure_note}{retry_note}{cache_note}",
            f"  {'label':<44} {'digest':<14} {'deliv':>6} {'drop':>5} "
            f"{'viol':>5}",
        ]
        for result in self.results:
            label = result.label or f"seed={result.seed}"
            deliverability = result.deliverability
            digest = result.digest[:12] if result.digest else "FAILED"
            lines.append(
                f"  {label[:44]:<44} {digest:<14} "
                f"{deliverability.get('delivered', '-'):>6} "
                f"{deliverability.get('dropped', '-'):>5} "
                f"{result.invariants.get('violation_count', 0) if result.invariants.get('armed') else '-':>5}"
            )
        for result in self.failures:
            failure = result.failure or {}
            lines.append(
                f"  quarantined: {result.label or result.seed} — "
                f"{failure.get('reason', '?')} after "
                f"{failure.get('attempts', '?')} attempt(s): "
                f"{failure.get('message', '')}")
        if self.interrupted:
            lines.append(
                "  interrupted: sweep drained early; results are partial")
        return "\n".join(lines)


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: indexed spec payload in, indexed result out.

    Module-level so it pickles by reference under the ``spawn`` start
    method (workers re-import :mod:`repro.experiment.sweep`).  The
    index rides along because results now stream back in *completion*
    order; the parent re-slots them into spec order.
    """
    spec = ExperimentSpec.from_dict(payload["spec"])
    runner = Runner(
        flightrec_path=payload.get("flightrec_path"),
        flightrec_limit=payload.get("flightrec_limit"),
    )
    return {"index": payload["index"], "result": runner.run(spec).to_dict()}


def failed_result(spec: ExperimentSpec, failure: Dict[str, Any]) -> RunResult:
    """A ``failed``-outcome placeholder for a quarantined cell.

    The sweep's contract is one :class:`RunResult` per spec in spec
    order; a cell that exhausted its retries still occupies its slot,
    carrying the failure reason instead of a digest so ``--json-out``,
    the ledger, and ``report`` can surface it.
    """
    return RunResult(
        spec=spec.to_dict(),
        label=spec.label,
        seed=spec.seed,
        sim_time=0.0,
        digest="",
        trace_entries=0,
        deliverability={"aggregates": False},
        overhead={},
        metrics={},
        invariants={"armed": False},
        registered=None,
        failure=dict(failure),
    )


class SweepExecutor:
    """Run a list of specs, optionally across supervised workers.

    ``jobs=1`` executes inline (no multiprocessing at all — the
    debugging and determinism baseline; worker exceptions still get
    retries and quarantine, but timeouts need real workers).
    ``jobs>1`` runs cells through a
    :class:`~repro.experiment.supervise.WorkerSupervisor`: explicit
    ``spawn``-context workers pulling one cell at a time (spawn is the
    only start method that is safe everywhere — fork duplicates
    arbitrary parent state; the simulator holds nothing process-global
    that matters, but spawn proves it), exchanging only JSON-clean
    dicts.  Results always come back in spec order regardless of
    completion order.

    Fault-tolerance knobs:

    * ``cell_timeout`` — wall-clock seconds per cell; an overrunning
      cell's worker is SIGKILLed and the cell retried.
    * ``max_retries`` / ``retry_backoff`` — every cell failure
      (exception, crash, timeout) requeues the cell with exponential
      backoff until retries are spent; then the cell is quarantined as
      a ``failed`` :class:`RunResult` (see :func:`failed_result`) and
      the sweep continues.
    * ``strict_cells`` — restore fail-fast: the first cell failure
      raises :class:`~repro.experiment.supervise.CellFailedError`
      (no retries, no quarantine).
    * ``checkpoint`` — a
      :class:`~repro.experiment.supervise.SweepCheckpoint`; every
      completed (non-failed) cell is journaled as it lands, so a
      killed sweep can be resumed.
    * ``resume`` — a ``spec_content_digest → result dict`` map (from
      :meth:`SweepCheckpoint.load`); matching cells are absorbed with
      provenance ``"checkpoint"`` instead of re-running.  Composes
      with (but does not depend on) the salted result cache.
    * SIGINT/SIGTERM during :meth:`run` drain gracefully: dispatch
      stops, in-flight cells get ``grace`` seconds, and the partial
      sweep returns with ``interrupted=True`` (the CLI maps that to
      exit 130).

    Telemetry hooks (all optional, all parent-side):

    * ``ledger`` — a :class:`~repro.obs.ledger.RunLedger`; the sweep
      appends a ``sweep-start`` record, one ``run`` record per cell
      **as it completes** (provenance ``"cache"``, ``"checkpoint"``,
      or ``"run"``; outcome ``"failed"`` for quarantined cells), and a
      ``sweep-end`` record flagged ``interrupted`` when the sweep
      drained early.  Because cells are recorded at completion and
      appends are atomic, a killed sweep leaves exactly the completed
      cells as valid JSONL.
    * ``progress`` — a callback receiving one dict per completed cell:
      completed/total, cells/sec, ETA, cache-hit rate, cumulative
      violations/failures/retries, plus the cell's label/digest (the
      CLI renders these to stderr behind ``--progress``).
    * ``flightrec_path`` — arm the per-run flight recorder in every
      worker; multi-cell sweeps write per-cell dumps next to the base
      path (``flightrec-007.json``).  Cache hits never re-dump: the
      postmortem belongs to the run that actually executed.
    """

    def __init__(
        self,
        jobs: int = 1,
        mp_context: str = "spawn",
        cache: Optional[ResultCache] = None,
        ledger: Optional[RunLedger] = None,
        progress: Optional[ProgressCallback] = None,
        flightrec_path: Optional[str] = None,
        flightrec_limit: Optional[int] = None,
        cell_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        strict_cells: bool = False,
        checkpoint: Optional[SweepCheckpoint] = None,
        resume: Optional[Dict[str, Dict[str, Any]]] = None,
        grace: float = 5.0,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.jobs = jobs
        self.mp_context = mp_context
        self.cache = cache
        self.ledger = ledger
        self.progress = progress
        self.flightrec_path = flightrec_path
        self.flightrec_limit = flightrec_limit
        self.cell_timeout = cell_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.strict_cells = strict_cells
        self.checkpoint = checkpoint
        self.resume = resume
        self.grace = grace
        self._stop_requested = False

    def _cell_flightrec_path(self, index: int, total: int) -> Optional[str]:
        if self.flightrec_path is None:
            return None
        if total <= 1:
            return self.flightrec_path
        root, ext = os.path.splitext(self.flightrec_path)
        return f"{root}-{index:03d}{ext or '.json'}"

    def run(self, specs: Sequence[ExperimentSpec]) -> SweepResult:
        start = time.perf_counter()
        cache = self.cache
        ledger = self.ledger
        progress = self.progress
        checkpoint = self.checkpoint
        resume_map = self.resume or {}
        total = len(specs)
        results: List[Optional[RunResult]] = [None] * total
        completed = 0
        cache_hits = 0
        violations_total = 0
        failed_total = 0
        retries_total = 0
        self._stop_requested = False
        supervisor: Optional[WorkerSupervisor] = None
        if ledger is not None:
            ledger.append(sweep_start_record(
                total=total, jobs=self.jobs, cache=cache is not None))

        def finish_cell(index: int, result: RunResult, provenance: str,
                        attempts: Optional[int] = None) -> None:
            # The single completion path: every cell — cached,
            # checkpointed, quarantined, inline, or from a worker —
            # lands here the moment it is known, so the checkpoint,
            # ledger, and progress stream see the sweep cell-by-cell
            # rather than at the final merge.
            nonlocal completed, cache_hits, violations_total, failed_total
            results[index] = result
            completed += 1
            cache_hits += 1 if provenance == "cache" else 0
            cell_violations = result.invariants.get("violation_count", 0)
            violations_total += cell_violations
            failed = result.failure is not None
            failed_total += 1 if failed else 0
            if (checkpoint is not None and not failed
                    and provenance != "checkpoint"):
                # Failed cells are never journaled: a resume should
                # retry them, not replay the failure.
                checkpoint.record(
                    spec_content_digest(specs[index].to_dict()),
                    result.to_dict())
            if ledger is not None:
                ledger.append(run_record(
                    result, provenance=provenance, attempts=attempts))
            if progress is not None:
                elapsed = time.perf_counter() - start
                rate = completed / elapsed if elapsed > 0 else 0.0
                progress({
                    "index": index,
                    "label": result.label,
                    "digest": result.digest,
                    "cache_hit": provenance == "cache",
                    "provenance": provenance,
                    "failed": failed,
                    "violations": cell_violations,
                    "completed": completed,
                    "total": total,
                    "elapsed": elapsed,
                    "cells_per_sec": rate,
                    "eta_sec": (total - completed) / rate if rate > 0
                    else 0.0,
                    "cache_hits": cache_hits,
                    "cache_hit_rate": cache_hits / completed,
                    "violations_total": violations_total,
                    "failures_total": failed_total,
                    "retries_total": retries_total,
                })

        def on_signal(_signum, _frame):
            # Async-signal-safe: set flags, let the run loop drain.
            self._stop_requested = True
            if supervisor is not None:
                supervisor.request_stop()

        installed: List[Any] = []
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                installed.append((signum, signal.signal(signum, on_signal)))
        except ValueError:
            # Not the main thread: run without drain-on-signal.
            pass

        try:
            # Parent-side checkpoint and cache lookups happen before
            # any worker dispatch, so a fully-warm grid never pays
            # spawn cost.  Absorbed cells flow through the same result
            # list, so invariant accounting sees them like live runs.
            pending: List[int] = []
            for index, spec in enumerate(specs):
                if resume_map:
                    hit = self._from_checkpoint(
                        resume_map.get(spec_content_digest(spec.to_dict())))
                    if hit is not None:
                        finish_cell(index, hit, "checkpoint")
                        continue
                if cache is not None:
                    cached = cache.lookup(spec)
                    if cached is not None:
                        finish_cell(index, cached, "cache")
                        continue
                pending.append(index)
            payloads = [
                {
                    "index": index,
                    "spec": specs[index].to_dict(),
                    "flightrec_path": self._cell_flightrec_path(index, total),
                    "flightrec_limit": self.flightrec_limit,
                }
                for index in pending
            ]

            def absorb(index: int, result_data: Dict[str, Any],
                       attempts: int) -> None:
                result = RunResult.from_dict(result_data)
                if cache is not None:
                    cache.store(specs[index], result)
                finish_cell(index, result, "run", attempts=attempts)

            def absorb_failure(index: int, failure: Dict[str, Any]) -> None:
                if self.strict_cells:
                    raise CellFailedError(specs[index].label, failure)
                finish_cell(
                    index, failed_result(specs[index], failure), "run",
                    attempts=failure.get("attempts"))

            if not payloads:
                pass
            elif self.jobs == 1 or len(payloads) <= 1:
                for payload in payloads:
                    if self._stop_requested:
                        break
                    outcome = self._run_inline(
                        payload, specs[payload["index"]])
                    if outcome is None:
                        break  # interrupted mid-retry-backoff
                    retries_total += outcome.get("retries", 0)
                    if "result" in outcome:
                        absorb(payload["index"], outcome["result"],
                               outcome["attempts"])
                    else:
                        absorb_failure(payload["index"], outcome["failure"])
            else:
                supervisor = WorkerSupervisor(
                    jobs=self.jobs,
                    mp_context=self.mp_context,
                    cell_timeout=self.cell_timeout,
                    max_retries=0 if self.strict_cells else self.max_retries,
                    retry_backoff=self.retry_backoff,
                    grace=self.grace,
                )
                if self._stop_requested:
                    supervisor.request_stop()
                for event in supervisor.run(payloads):
                    if event["kind"] == "result":
                        absorb(event["index"], event["result"],
                               event["attempts"])
                    elif event["kind"] == "failed":
                        absorb_failure(event["index"], event["failure"])
                    elif event["kind"] == "retry":
                        retries_total += 1
        finally:
            for signum, previous in installed:
                signal.signal(signum, previous)

        interrupted = self._stop_requested
        elapsed = time.perf_counter() - start
        if ledger is not None:
            ledger.append(sweep_end_record(
                completed=completed, total=total, elapsed=elapsed,
                violation_count=violations_total,
                cache=cache.stats() if cache is not None else None,
                interrupted=interrupted, failed=failed_total))
        return SweepResult(
            results=[r for r in results if r is not None],
            jobs=self.jobs,
            elapsed=elapsed,
            cache=cache.stats() if cache is not None else None,
            interrupted=interrupted,
            retries=retries_total,
        )

    @staticmethod
    def _from_checkpoint(data: Optional[Dict[str, Any]]) -> Optional[RunResult]:
        """Deserialize a checkpointed result; unusable payloads are a miss."""
        if data is None:
            return None
        try:
            result = RunResult.from_dict(data)
        except (TypeError, ValueError):
            return None
        if result.failure is not None:
            return None
        return result

    def _run_inline(
        self, payload: Dict[str, Any], spec: ExperimentSpec
    ) -> Optional[Dict[str, Any]]:
        """One cell inline, with the supervisor's retry/quarantine policy.

        Timeouts need a killable worker, so ``cell_timeout`` does not
        apply inline; exceptions (including injected poison faults) are
        retried with the same backoff schedule and quarantined the same
        way.  Returns ``None`` when a stop request lands mid-backoff.
        """
        attempt = 0
        retries = 0
        failures: List[Dict[str, Any]] = []
        while True:
            try:
                maybe_inject_fault(spec.label or "", attempt)
                data = _execute_payload(payload)
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - the failure policy
                detail = describe_exception(exc)
                failures.append({"reason": "exception", "attempt": attempt,
                                 "detail": detail})
                failure = {
                    "reason": "exception",
                    "attempts": attempt + 1,
                    "message": detail["message"],
                    "history": list(failures),
                }
                if self.strict_cells:
                    raise CellFailedError(spec.label, failure) from exc
                if attempt >= self.max_retries:
                    return {"failure": failure, "retries": retries}
                attempt += 1
                retries += 1
                deadline = time.monotonic() + (
                    self.retry_backoff * (2 ** (attempt - 1)))
                while time.monotonic() < deadline:
                    if self._stop_requested:
                        return None
                    time.sleep(0.02)
            else:
                return {"result": data["result"], "attempts": attempt + 1,
                        "retries": retries}


def aggregate_fast_forward(results: Sequence[RunResult]) -> Dict[str, int]:
    """Sum per-run fast-forward stats across a sweep's results."""
    totals = {
        "engaged_runs": 0, "replayed": 0, "captured": 0,
        "fallbacks": 0, "world_changes": 0,
    }
    for result in results:
        stats = result.extras.get("fast_forward") or {}
        for key in totals:
            totals[key] += stats.get(key, 0)
    return totals


def demo_grid(
    seeds: Optional[List[int]] = None,
    datagrams: int = 60,
) -> SpecGrid:
    """The worked 4x4-coverage sweep (see README): awareness ×
    visited-domain posture × probe strategy, crossed with seeds.

    Sixteen-plus cells of world configuration around the canonical
    traffic workload — the cross-product the paper's Figure 10
    taxonomy lives in.  Every run arms the invariant monitor, so the
    sweep doubles as a correctness gate.
    """
    base = ExperimentSpec(
        duration=30.0,
        traffic=TrafficProgram(
            uniform={"datagrams": datagrams, "spacing": 0.25,
                     "size": 100, "direction": "both"},
        ),
        arm_invariants=True,
    ).to_dict()
    del base["label"]
    return SpecGrid(
        base=base,
        axes={
            "seed": list(seeds) if seeds else [1996, 2024],
            "awareness": ["conventional", "decap-capable", "mobile-aware"],
            "visited_filtering": [True, False],
            "strategy": ["rule-seeded", "conservative-first"],
        },
    )
