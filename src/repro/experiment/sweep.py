"""Parameter sweeps: expand a spec grid, fan runs out across processes.

The paper's central claim is that the *right* cell of the 4x4 grid
depends on network permissiveness, correspondent awareness, and what
you optimize — a cross-product of knobs.  :class:`SpecGrid` expands a
base :class:`~repro.experiment.spec.ExperimentSpec` against named axes
into a deterministic, ordered list of specs, and :class:`SweepExecutor`
runs them — inline for ``jobs=1``, or across a spawn-safe
``multiprocessing`` pool for ``jobs>1``, merging results back in spec
order.

Determinism is the contract: every run builds its own seeded
:class:`~repro.netsim.simulator.Simulator`, no state crosses runs
(trace digests already normalize away the only process-global
counters), so a parallel sweep produces **byte-identical per-run trace
digests** to the same specs run serially.  The executor only moves
plain dicts across the process boundary, which is also why specs and
results must be plain data.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .cache import ResultCache
from .runner import Runner, RunResult
from .spec import ExperimentSpec, SpecError, TrafficProgram

__all__ = ["SpecGrid", "SweepResult", "SweepExecutor", "demo_grid"]


@dataclass
class SpecGrid:
    """A base spec plus axes to cross: ``{"base": {...}, "axes": {...}}``.

    Axis order (insertion order of ``axes``) fixes the expansion
    order: the last axis varies fastest, like nested for-loops.  Each
    expanded spec gets a ``label`` naming its coordinates unless the
    base already sets one.
    """

    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.base, dict):
            raise SpecError(f"grid base must be an object, got {self.base!r}")
        if not isinstance(self.axes, dict):
            raise SpecError(f"grid axes must be an object, got {self.axes!r}")
        valid = set(ExperimentSpec.__dataclass_fields__)
        for name, values in self.axes.items():
            if name not in valid:
                raise SpecError(
                    f"grid axis {name!r} is not an experiment-spec field")
            if not isinstance(values, list) or not values:
                raise SpecError(
                    f"grid axis {name!r} needs a non-empty list of values, "
                    f"got {values!r}")
        unknown = set(self.base) - valid
        if unknown:
            raise SpecError(
                f"grid base has unknown spec fields {sorted(unknown)}")

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def expand(self) -> List[ExperimentSpec]:
        """All axis combinations as validated specs, in grid order."""
        names = list(self.axes)
        specs: List[ExperimentSpec] = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            data = dict(self.base)
            data.update(zip(names, combo))
            data.setdefault(
                "label",
                ",".join(f"{n}={v}" for n, v in zip(names, combo)))
            specs.append(ExperimentSpec.from_dict(data))
        return specs

    def to_dict(self) -> Dict[str, Any]:
        return {"base": dict(self.base), "axes": dict(self.axes)}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpecGrid":
        if not isinstance(data, dict):
            raise SpecError(f"grid must be a JSON object, got {data!r}")
        unknown = set(data) - {"base", "axes"}
        if unknown:
            raise SpecError(f"grid has unknown fields {sorted(unknown)}")
        return cls(base=data.get("base", {}), axes=data.get("axes", {}))

    @classmethod
    def from_json(cls, text: str) -> "SpecGrid":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid grid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "SpecGrid":
        with open(path) as handle:
            return cls.from_json(handle.read())


@dataclass
class SweepResult:
    """Ordered results of one sweep, plus executor accounting."""

    results: List[RunResult]
    jobs: int
    elapsed: float
    # Cache counters for this sweep (None when no cache was wired).
    cache: Optional[Dict[str, int]] = None

    @property
    def runs(self) -> int:
        return len(self.results)

    @property
    def runs_per_sec(self) -> float:
        return self.runs / self.elapsed if self.elapsed > 0 else float("inf")

    @property
    def violation_count(self) -> int:
        return sum(
            r.invariants.get("violation_count", 0) for r in self.results)

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def digests(self) -> List[str]:
        return [r.digest for r in self.results]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "runs": self.runs,
            "elapsed": self.elapsed,
            "runs_per_sec": self.runs_per_sec,
            "violation_count": self.violation_count,
            "cache": self.cache,
            "results": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        cache_note = ""
        if self.cache is not None:
            cache_note = (
                f", cache {self.cache['hits']} hit(s) / "
                f"{self.cache['misses']} miss(es)")
        lines = [
            f"sweep: {self.runs} runs, jobs={self.jobs}, "
            f"{self.elapsed:.2f}s wall ({self.runs_per_sec:.2f} runs/s), "
            f"{self.violation_count} invariant violation(s)"
            f"{cache_note}",
            f"  {'label':<44} {'digest':<14} {'deliv':>6} {'drop':>5} "
            f"{'viol':>5}",
        ]
        for result in self.results:
            label = result.label or f"seed={result.seed}"
            deliverability = result.deliverability
            lines.append(
                f"  {label[:44]:<44} {result.digest[:12]:<14} "
                f"{deliverability.get('delivered', '-'):>6} "
                f"{deliverability.get('dropped', '-'):>5} "
                f"{result.invariants.get('violation_count', 0) if result.invariants.get('armed') else '-':>5}"
            )
        return "\n".join(lines)


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: spec dict in, result dict out.

    Module-level so it pickles by reference under the ``spawn`` start
    method (workers re-import :mod:`repro.experiment.sweep`).
    """
    spec = ExperimentSpec.from_dict(payload)
    return Runner().run(spec).to_dict()


class SweepExecutor:
    """Run a list of specs, optionally across worker processes.

    ``jobs=1`` executes inline (no multiprocessing at all — the
    debugging and determinism baseline).  ``jobs>1`` uses a ``spawn``
    pool: spawn is the only start method that is safe everywhere
    (fork duplicates arbitrary parent state; the simulator holds
    nothing process-global that matters, but spawn proves it), and the
    workers exchange only JSON-clean dicts.  Results always come back
    in spec order regardless of completion order.
    """

    def __init__(
        self,
        jobs: int = 1,
        mp_context: str = "spawn",
        cache: Optional[ResultCache] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.mp_context = mp_context
        self.cache = cache

    def run(self, specs: Sequence[ExperimentSpec]) -> SweepResult:
        start = time.perf_counter()
        cache = self.cache
        # Parent-side cache lookups happen before any pool dispatch, so
        # a fully-warm grid never pays worker spawn cost.  Cached cells
        # flow through the same result list, so invariant accounting
        # (SweepResult.violation_count) sees them like live runs.
        results: List[Optional[RunResult]] = [None] * len(specs)
        pending: List[int] = []
        if cache is not None:
            for index, spec in enumerate(specs):
                hit = cache.lookup(spec)
                if hit is not None:
                    results[index] = hit
                else:
                    pending.append(index)
        else:
            pending = list(range(len(specs)))
        payloads = [specs[index].to_dict() for index in pending]
        if not payloads:
            raw: List[Dict[str, Any]] = []
        elif self.jobs == 1 or len(payloads) <= 1:
            raw = [_execute_payload(payload) for payload in payloads]
        else:
            raw = self._run_pool(payloads)
        for index, data in zip(pending, raw):
            result = RunResult.from_dict(data)
            results[index] = result
            if cache is not None:
                cache.store(specs[index], result)
        elapsed = time.perf_counter() - start
        return SweepResult(
            results=[r for r in results if r is not None],
            jobs=self.jobs,
            elapsed=elapsed,
            cache=cache.stats() if cache is not None else None,
        )

    def _run_pool(
        self, payloads: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        import multiprocessing

        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.jobs, len(payloads))
        with context.Pool(processes=workers) as pool:
            # map() preserves input order; chunksize=1 keeps the
            # longest-running specs from serializing behind each other.
            return pool.map(_execute_payload, payloads, chunksize=1)


def demo_grid(
    seeds: Optional[List[int]] = None,
    datagrams: int = 60,
) -> SpecGrid:
    """The worked 4x4-coverage sweep (see README): awareness ×
    visited-domain posture × probe strategy, crossed with seeds.

    Sixteen-plus cells of world configuration around the canonical
    traffic workload — the cross-product the paper's Figure 10
    taxonomy lives in.  Every run arms the invariant monitor, so the
    sweep doubles as a correctness gate.
    """
    base = ExperimentSpec(
        duration=30.0,
        traffic=TrafficProgram(
            uniform={"datagrams": datagrams, "spacing": 0.25,
                     "size": 100, "direction": "both"},
        ),
        arm_invariants=True,
    ).to_dict()
    del base["label"]
    return SpecGrid(
        base=base,
        axes={
            "seed": list(seeds) if seeds else [1996, 2024],
            "awareness": ["conventional", "decap-capable", "mobile-aware"],
            "visited_filtering": [True, False],
            "strategy": ["rule-seeded", "conservative-first"],
        },
    )
