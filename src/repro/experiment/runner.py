"""The canonical run lifecycle: build → arm → drive → collect.

Every driver in the tree used to hand-roll this sequence around
:func:`build_scenario`; the :class:`Runner` owns it once.  Given an
:class:`~repro.experiment.spec.ExperimentSpec` it

1. **builds** the scenario from ``spec.scenario_kwargs()``;
2. **arms** the observability layer (``spec.observe``), the invariant
   monitor (``spec.arm_invariants``), the fault plan, and the
   adversary schedule — in that fixed order, which reproduces the
   event-queue insertion order of the legacy call sites so trace
   digests are byte-identical to the code this replaced;
3. **drives** the spec's traffic program (and an optional in-process
   ``driver`` hook for workloads that need custom sockets — the chaos
   conversation, the CLI's figure experiments);
4. **collects** a :class:`RunResult`: trace digest, deliverability and
   overhead summaries, a full metrics-registry snapshot, and the
   invariant verdict.

A :class:`RunResult` is plain data (JSON/pickle-clean), so runs can
execute in worker processes and merge losslessly — the property the
parallel sweep executor is built on.  For in-process callers that need
the live objects (benchmark asserts, chrome-trace export), the runner
keeps the last scenario on :attr:`Runner.scenario`.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..analysis.scenarios import Scenario, build_scenario
from ..bench.golden import trace_digest
from ..netsim.faults import FaultInjector
from .spec import ExperimentSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.ledger import RunLedger

__all__ = ["RunResult", "Runner", "Driver"]

# A driver installs custom workload machinery on the built, armed
# scenario before the clock runs, and may return a collector invoked
# after the run whose dict lands in RunResult.extras.
Driver = Callable[[Scenario, ExperimentSpec], Optional[Callable[[], Dict[str, Any]]]]


@dataclass
class RunResult:
    """Everything one run produced, as plain data."""

    spec: Dict[str, Any]
    label: str
    seed: int
    sim_time: float
    digest: str
    trace_entries: int
    deliverability: Dict[str, Any]
    overhead: Dict[str, Any]
    metrics: Dict[str, Any]
    invariants: Dict[str, Any]
    registered: Optional[bool]
    faults: Dict[str, int] = field(default_factory=dict)
    obs: Optional[Dict[str, Any]] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    # Per-phase wall timings from the Runner profiler: build / arm /
    # drive / collect / total, in seconds.  Defaulted so result dicts
    # cached before the profiler existed still deserialize.
    timings: Dict[str, float] = field(default_factory=dict)
    # Non-None marks a quarantined sweep cell that never produced a
    # real result: {"reason": "exception"|"crash"|"timeout",
    # "attempts": N, "message": ..., "history": [...]}.  Defaulted so
    # result dicts written before fault tolerance still deserialize.
    failure: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """Ran to completion with no invariant violations."""
        return (self.failure is None
                and not self.invariants.get("violation_count"))

    @property
    def outcome(self) -> str:
        """``"ok"`` | ``"violations"`` | ``"failed"`` — one word per cell."""
        if self.failure is not None:
            return "failed"
        if self.invariants.get("violation_count"):
            return "violations"
        return "ok"

    @property
    def violations(self) -> List[Dict[str, Any]]:
        return self.invariants.get("violations", [])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec,
            "label": self.label,
            "seed": self.seed,
            "sim_time": self.sim_time,
            "digest": self.digest,
            "trace_entries": self.trace_entries,
            "deliverability": self.deliverability,
            "overhead": self.overhead,
            "metrics": self.metrics,
            "invariants": self.invariants,
            "registered": self.registered,
            "faults": self.faults,
            "obs": self.obs,
            "extras": self.extras,
            "timings": self.timings,
            "failure": self.failure,
            "outcome": self.outcome,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        data = dict(data)
        # outcome is derived, not stored state; older dicts lack it
        # (and failure), newer readers of older dicts default both.
        data.pop("outcome", None)
        return cls(**data)


class Runner:
    """Executes one :class:`ExperimentSpec` through the full lifecycle.

    ``ledger`` (a :class:`~repro.obs.ledger.RunLedger`) receives one
    durable JSONL record per run.  ``flightrec_path`` arms the
    postmortem flight recorder (see :mod:`repro.obs.flightrec`): the
    ring rides every run, and a run that ends with invariant
    violations dumps it to that path; the dump's whereabouts land in
    ``RunResult.extras["flightrec"]``.  Both default off, so plain
    callers pay nothing.
    """

    def __init__(
        self,
        ledger: Optional["RunLedger"] = None,
        flightrec_path: Optional[str] = None,
        flightrec_limit: Optional[int] = None,
    ) -> None:
        self.scenario: Optional[Scenario] = None
        self.ledger = ledger
        self.flightrec_path = flightrec_path
        self.flightrec_limit = flightrec_limit

    def run(
        self,
        spec: ExperimentSpec,
        driver: Optional[Driver] = None,
    ) -> RunResult:
        # One run allocates heavily (trace entries, heap tuples, packet
        # objects) but everything stays reachable until collection is
        # pointless; pausing the cyclic GC for the bounded lifecycle
        # avoids dozens of gen-0 scans.  Re-enabled even on error.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return self._run(spec, driver)
        finally:
            if was_enabled:
                gc.enable()

    def _run(
        self,
        spec: ExperimentSpec,
        driver: Optional[Driver] = None,
    ) -> RunResult:
        t_start = perf_counter()
        # -- build ----------------------------------------------------
        scenario = build_scenario(**spec.scenario_kwargs())
        self.scenario = scenario
        sim = scenario.sim
        t_built = perf_counter()

        # -- arm ------------------------------------------------------
        obs = (
            sim.enable_observability(engine_cadence=spec.obs_cadence)
            if spec.observe else None
        )
        monitor = (
            sim.enable_invariants(**spec.invariant_kwargs())
            if spec.arm_invariants else None
        )
        flightrec = (
            sim.enable_flight_recorder(limit=self.flightrec_limit)
            if self.flightrec_path is not None else None
        )
        t_armed = perf_counter()

        # -- drive ----------------------------------------------------
        if spec.traffic is not None and spec.traffic.resolved_events():
            _schedule_traffic(scenario, spec)
        injector = None
        plan = spec.fault_plan()
        if plan is not None and plan.events:
            injector = FaultInjector(sim, net=scenario.net)
            injector.inject(plan)
        if spec.adversary:
            _schedule_adversary(scenario, spec)
        collect_extras = driver(scenario, spec) if driver is not None else None

        if spec.absolute:
            sim.run(until=spec.duration)
        else:
            sim.run(until=sim.now + spec.duration + spec.settle_margin)
        t_driven = perf_counter()

        if monitor is not None:
            monitor.finish(sim.now)
        if obs is not None:
            obs.finish()

        # -- collect --------------------------------------------------
        digest, entries = trace_digest(sim.trace)
        trace = sim.trace
        deliverability: Dict[str, Any] = {
            "aggregates": trace.aggregates,
        }
        overhead: Dict[str, Any] = {}
        if trace.aggregates:
            counts = trace.action_counts
            deliverability.update({
                "sent": counts.get("send", 0),
                "delivered": counts.get("deliver", 0),
                "dropped": counts.get("drop", 0),
                "lost": counts.get("lost", 0),
                "drops_by_reason": dict(trace.drops_by_reason),
                "losses_by_reason": dict(trace.losses_by_reason),
            })
            overhead = {
                "tunneled_by_ha": scenario.ha.packets_tunneled,
                "bytes_by_link": dict(trace.bytes_by_link),
            }
        invariants: Dict[str, Any] = {"armed": monitor is not None}
        if monitor is not None:
            invariants.update({
                "violation_count": monitor.violation_count,
                "violations": [v.to_dict() for v in monitor.violations],
                "checks": dict(monitor.checks),
            })
        extras = collect_extras() if collect_extras is not None else {}
        if sim.fast_forward is not None:
            extras = dict(extras)
            extras["fast_forward"] = sim.fast_forward.stats()
        if flightrec is not None:
            extras = dict(extras)
            info: Dict[str, Any] = {
                "armed": True,
                "limit": flightrec.limit,
                "recorded": flightrec.recorded,
                "path": None,
                "dumped": False,
                "reason": None,
            }
            if monitor is not None and monitor.violation_count:
                info["path"] = flightrec.dump(
                    self.flightrec_path, reason="invariant-violation",
                    violations=[v.to_dict() for v in monitor.violations])
                info["dumped"] = True
                info["reason"] = "invariant-violation"
            extras["flightrec"] = info
        t_collected = perf_counter()
        timings = {
            "build": t_built - t_start,
            "arm": t_armed - t_built,
            "drive": t_driven - t_armed,
            "collect": t_collected - t_driven,
            "total": t_collected - t_start,
        }
        result = RunResult(
            spec=spec.to_dict(),
            label=spec.label,
            seed=spec.seed,
            sim_time=sim.now,
            digest=digest,
            trace_entries=entries,
            deliverability=deliverability,
            overhead=overhead,
            metrics=sim.metrics.collect(),
            invariants=invariants,
            registered=scenario.mh.registered,
            faults=dict(injector.applied) if injector is not None else {},
            obs=obs.report() if obs is not None else None,
            extras=extras,
            timings=timings,
        )
        if self.ledger is not None:
            from ..obs.ledger import run_record

            self.ledger.append(run_record(result, provenance="run"))
        return result


# ----------------------------------------------------------------------
# Traffic & adversary interpreters
# ----------------------------------------------------------------------
def _traffic_sink(*_args) -> None:
    """Shared no-op receive callback; ``ff_pure`` lets the fast path
    prune the delivery invoke from replay templates."""


_traffic_sink.ff_pure = True


def _resolve_traffic_target(scenario: Scenario, target: Optional[str]):
    """The mobile-side traffic endpoint: ``scenario.mh`` by default, or
    the node named by ``TrafficProgram.target``.

    A target name that belongs to a pooled flyweight host promotes it
    to a full node here, at arm time — before any packet flows, so the
    trace is identical to a world where the host was always full (see
    repro.netsim.population).
    """
    if target is None:
        return scenario.mh
    node = scenario.sim.nodes.get(target)
    if node is None and scenario.population is not None:
        node = scenario.population.promote_name(target)
    if node is None:
        raise ValueError(
            f"traffic target {target!r} names no node (and no pooled host)")
    if not hasattr(node, "stack") or not hasattr(node, "home_address"):
        raise ValueError(
            f"traffic target {target!r} is not a mobile endpoint "
            f"(needs a transport stack and a home address)")
    return node


def _schedule_traffic(scenario: Scenario, spec: ExperimentSpec) -> None:
    """Install the spec's UDP program on the scenario's sockets.

    The two socket disciplines replicate the legacy call sites exactly
    (see :class:`~repro.experiment.spec.TrafficProgram`): ``ch_bind``
    opens the correspondent socket first, bound at ``port`` (the
    fuzzer's shape); otherwise the mobile host binds at ``port`` and
    the correspondent sends from an ephemeral socket (the canonical
    workload's shape).
    """
    program = spec.traffic
    assert program is not None
    sim = scenario.sim
    assert scenario.ch is not None and scenario.ch_ip is not None, (
        "traffic program needs a correspondent")
    mobile = _resolve_traffic_target(scenario, program.target)
    if program.ch_bind:
        ch_sock = scenario.ch.stack.udp_socket(program.port)
        ch_sock.on_receive(_traffic_sink)
        mh_sock = mobile.stack.udp_socket(program.port)
        mh_sock.on_receive(_traffic_sink)
        dst_port = program.port
    else:
        mh_sock = mobile.stack.udp_socket(program.port)
        mh_sock.on_receive(_traffic_sink)
        ch_sock = scenario.ch.stack.udp_socket()
        ch_sock.on_receive(_traffic_sink)
        dst_port = program.port
    indexed = program.payload_style == "indexed"
    ff = sim.fast_forward
    if ff is not None:
        ff.register_traffic(
            stacks=(mobile.stack, scenario.ch.stack),
            sockets=(mh_sock, ch_sock),
        )
    for index, event in enumerate(program.resolved_events()):
        if event["direction"] == "mh->ch":
            origin, socket, dst = mobile, mh_sock, scenario.ch_ip
        else:
            origin, socket, dst = ch_sock.stack.node, ch_sock, mobile.home_address
        payload = ("fuzz", index) if indexed else "x"
        handle = sim.events.schedule(
            event["at"],
            lambda s=socket, p=payload, size=event["size"], d=dst:
                s.sendto(p, size, d, dst_port),
            label=f"traffic-{index}",
        )
        if ff is not None:
            # Flow identity: same origin/destination/port/size dispatches
            # are candidates for one replay template (payload content is
            # still verified per-capture through the recorded invokes).
            ff.register_flow_event(
                handle, origin,
                (event["direction"], str(dst), dst_port, event["size"]),
                dst,
            )


def _schedule_adversary(scenario: Scenario, spec: ExperimentSpec) -> None:
    """Schedule the spec's adversary events (attacker on the visited LAN)."""
    from ..mobileip.registration import RegistrationRequest, compute_authenticator
    from ..verify.adversary import Adversary

    sim = scenario.sim
    adversary = Adversary("adv", sim)
    scenario.net.add_host("visited", adversary)
    ha_ip = scenario.ha_ip
    mh = scenario.mh
    auth_key = spec.auth_key

    def attack(kind: str) -> None:
        if kind == "spoof":
            adversary.spoof_registration(ha_ip, mh.home_address)
        elif kind == "replay":
            # A request sniffed off the wire earlier: valid
            # authenticator (the attacker has the ciphertext, not the
            # key), stale ident.
            care_of = mh.care_of if mh.care_of is not None else mh.home_address
            lifetime = mh.reg_lifetime
            auth = (
                compute_authenticator(
                    auth_key, mh.home_address, care_of, lifetime, 1)
                if auth_key else None
            )
            adversary.capture(RegistrationRequest(
                home_address=mh.home_address,
                care_of_address=care_of,
                lifetime=lifetime,
                ident=1,
                auth=auth,
            ))
            adversary.replay_captured(ha_ip)
        elif kind == "bogus":
            adversary.send_bogus_tunnel(mh.care_of or mh.home_address)
        elif kind == "truncated":
            adversary.send_truncated_tunnel(ha_ip)

    for index, event in enumerate(spec.adversary):
        sim.events.schedule(
            event["at"], lambda k=event["kind"]: attack(k),
            label=f"adversary-{index}",
        )
