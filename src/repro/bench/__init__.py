"""Micro-benchmark harness for the simulation substrate.

Every paper figure and ablation in this repository executes as a
discrete-event scenario, so the throughput of the :mod:`repro.netsim`
substrate bounds the wall time of the entire reproduction.  This
package isolates the hot layers — event engine, addressing, packet
sizing, tracing — into repeatable workloads and reports a machine
readable perf trajectory (``BENCH_*.json``) that future changes can be
regressed against.

Run it as::

    PYTHONPATH=src python -m repro.bench                # full suite
    PYTHONPATH=src python -m repro.bench --quick        # CI smoke run
    PYTHONPATH=src python -m repro.bench --baseline old.json -o new.json

Workloads are deterministic (fixed seeds, no wall-clock dependence in
the measured code) so run-to-run variance comes only from the host.
Each workload is timed ``repeat`` times and the best run is reported,
which is the standard way to suppress scheduler noise in
micro-benchmarks.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "WORKLOADS",
    "FF_DELTA_PAIRS",
    "run_event_churn",
    "run_event_cancel_churn",
    "run_scenario_build",
    "run_scenario_traffic",
    "run_scenario_traffic_no_ff",
    "run_fast_forward",
    "run_obs_overhead",
    "run_chaos_recovery",
    "run_chaos_recovery_no_ff",
    "run_congestion",
    "run_sweep_throughput",
    "run_sweep_throughput_parallel",
    "run_packet_sizing",
    "run_address_churn",
    "run_mega_world",
    "run_suite",
    "compare",
    "write_report",
    "render_report",
]


# ----------------------------------------------------------------------
# Workloads.  Each returns (units_of_work, unit_name); the runner times
# the call and derives ops/sec + ns/op from the unit count.
# ----------------------------------------------------------------------

def run_event_churn(n: int = 50_000, fanout: int = 10) -> Tuple[int, str]:
    """A tight self-rescheduling event loop — pure engine throughput.

    Mirrors ``benchmarks/test_perf_simulator.py::run_event_churn`` so
    the pytest-benchmark numbers and this harness measure the same
    workload shape.
    """
    from repro.netsim import EventQueue

    queue = EventQueue()
    remaining = {"n": n}

    def tick() -> None:
        if remaining["n"] > 0:
            remaining["n"] -= 1
            queue.schedule(0.001, tick)

    for _ in range(fanout):
        queue.schedule(0.0, tick)
    queue.run(max_events=4 * n)
    return queue.processed, "events"


def run_event_cancel_churn(n: int = 20_000) -> Tuple[int, str]:
    """Timer-heavy workload: schedule, cancel half, poll ``pending``.

    This is the shape of transport retransmission timers (armed per
    segment, cancelled by the ACK) and registration lifetimes — and the
    workload that exposes an O(n) ``pending`` scan or a heap full of
    cancelled corpses.
    """
    from repro.netsim import EventQueue

    queue = EventQueue()
    live = 0
    for index in range(n):
        event = queue.schedule(1.0 + index * 1e-6, lambda: None)
        if index % 2 == 0:
            event.cancel()
        else:
            live += 1
        if index % 64 == 0:
            # Poll, like a soak test or an adaptive transport would.
            assert queue.pending <= index + 1
    assert queue.pending == live
    queue.run(max_events=2 * n)
    return n, "timers"


def run_scenario_build(seed: int = 1401) -> Tuple[int, str]:
    """Construct the canonical figure stage once (topology + actors)."""
    from repro.analysis import build_scenario
    from repro.mobileip import Awareness

    build_scenario(seed=seed, ch_awareness=Awareness.CONVENTIONAL)
    return 1, "scenarios"


def run_scenario_traffic(datagrams: int = 200, seed: int = 1401) -> Tuple[int, str]:
    """Push UDP datagrams through the standard triangle-routing stage.

    The workload shape most figure benchmarks use: correspondent sends
    to the mobile host's home address, the home agent tunnels to the
    care-of address, packets traverse backbone routers and links.
    Executed through the experiment runner, so its numbers also price
    the canonical lifecycle every sweep cell pays.
    """
    from repro.experiment import Runner, canonical_traffic_spec

    runner = Runner()
    runner.run(canonical_traffic_spec(seed=seed, datagrams=datagrams))
    assert runner.scenario is not None
    assert runner.scenario.ha.packets_tunneled == datagrams
    return datagrams, "packets"


def run_scenario_traffic_no_ff(
    datagrams: int = 200, seed: int = 1401
) -> Tuple[int, str]:
    """``scenario_traffic`` with flow fast-forwarding disabled.

    The per-event control: identical spec, trace, and digest, but every
    datagram pays the full event loop.  ``scenario_traffic`` over this
    workload's ops/sec is the fast path's measured speedup (the
    report's ``fast_forward_deltas`` section computes it).
    """
    import dataclasses

    from repro.experiment import Runner, canonical_traffic_spec

    spec = dataclasses.replace(
        canonical_traffic_spec(seed=seed, datagrams=datagrams),
        fast_forward=False)
    runner = Runner()
    runner.run(spec)
    assert runner.scenario is not None
    assert runner.scenario.ha.packets_tunneled == datagrams
    return datagrams, "packets"


def run_fast_forward(datagrams: int = 200, seed: int = 1401) -> Tuple[int, str]:
    """The fast path itself: canonical traffic with replay engaged.

    Same stage as ``scenario_traffic`` but asserts the
    :class:`~repro.netsim.fastforward.FastForwarder` actually replayed
    the steady-state cascades (rather than silently falling back), so a
    regression that disengages the fast path fails the workload instead
    of just showing up as a slower number.  The unit is replayed
    cascades.
    """
    from repro.experiment import Runner, canonical_traffic_spec

    result = Runner().run(
        canonical_traffic_spec(seed=seed, datagrams=datagrams))
    ff = result.extras["fast_forward"]
    assert ff["enabled"], "fast-forward flag off in canonical spec"
    assert ff["engaged_runs"] >= 1, "fast-forward never engaged"
    assert ff["replayed"] > 0, "fast-forward engaged but replayed nothing"
    return ff["replayed"], "cascades"


def run_obs_overhead(datagrams: int = 200, seed: int = 1401) -> Tuple[int, str]:
    """The scenario-traffic workload with full observability enabled.

    Same traffic shape as ``scenario_traffic``, plus span recording, the
    engine sampler, and a full report build at the end.  Compare the two
    workloads' numbers to read off the cost of observability when *on*;
    the acceptance bar for the layer is that ``scenario_traffic`` itself
    (observability off) stays flat, which the baseline diff shows.
    """
    from repro.experiment import Runner, canonical_traffic_spec

    result = Runner().run(canonical_traffic_spec(
        seed=seed, datagrams=datagrams, observe=True, obs_cadence=0.1))
    assert result.obs is not None
    assert result.obs["spans"]["count"] >= datagrams
    return datagrams, "packets"


def run_ledger_overhead(datagrams: int = 200, seed: int = 1401) -> Tuple[int, str]:
    """The canonical workload with full telemetry armed.

    Same traffic shape as ``scenario_traffic``, plus a run-ledger append
    and the flight recorder on the trace stream.  The recorder forces
    live execution (it stands the fast-forwarder aside), so the honest
    comparator is ``scenario_traffic_no_ff``: that delta is the price of
    the ledger append plus the per-entry ring copy.  Versus
    ``scenario_traffic`` the number also includes the foregone replay
    speedup — the real cost of arming telemetry on a hot path.
    """
    import os
    import tempfile

    from repro.experiment import Runner, canonical_traffic_spec
    from repro.obs.ledger import RunLedger

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as root:
        ledger = RunLedger(os.path.join(root, "ledger.jsonl"))
        with ledger:
            runner = Runner(
                ledger=ledger,
                flightrec_path=os.path.join(root, "flightrec.json"),
            )
            result = runner.run(canonical_traffic_spec(
                seed=seed, datagrams=datagrams))
        assert ledger.appended == 1
        info = result.extras["flightrec"]
        assert info["armed"] and not info["dumped"]
    return datagrams, "packets"


def run_chaos_recovery(duration: float = 260.0, seed: int = 4242) -> Tuple[int, str]:
    """The default chaos scenario: faults injected, recovery measured.

    Exercises the fault-injection subsystem plus every recovery path it
    pokes (registration backoff, failed-mode aging, binding flush) in
    one deterministic run.  The unit is processed engine events, since
    a chaos run's cost is dominated by the event machinery under churn.
    """
    from repro.analysis.chaos import run_chaos

    report = run_chaos(seed=seed, duration=duration)
    assert report.faults, "fault plan applied no events"
    assert report.registered, "mobile host failed to recover registration"
    return report.trace_entries, "trace entries"


def run_chaos_recovery_no_ff(
    duration: float = 260.0, seed: int = 4242
) -> Tuple[int, str]:
    """``chaos_recovery`` with the fast-forward engine flag off.

    The chaos conversation registers no fast-forwardable flows, so the
    forwarder stands aside either way; this workload pins that claim —
    the on/off delta in ``fast_forward_deltas`` should hover around
    1.0, showing the fast path costs nothing when it cannot engage.
    """
    from repro.analysis.chaos import run_chaos

    report = run_chaos(seed=seed, duration=duration, fast_forward=False)
    assert report.faults, "fault plan applied no events"
    assert report.registered, "mobile host failed to recover registration"
    return report.trace_entries, "trace entries"


def run_congestion(datagrams: int = 400, seed: int = 1402) -> Tuple[int, str]:
    """The In-* modes contending for a throttled, bounded home uplink.

    Three cells (In-IE, In-DE, In-DH) push the same paced CH→MH train
    through the busy-line link model with the home uplink throttled to
    T1 speed and an 8-frame transmit queue, invariants armed.  The
    asserts pin the physics this workload exists to measure: the
    bottleneck actually overflows, every overflow loss is a classified
    terminal fate (no invariant violations), and the triangle route
    (In-IE) pays more latency than the LAN-direct route (In-DH).  The
    unit is datagrams offered across all cells.
    """
    from repro.analysis.congestion import run_congestion as run_cells

    report = run_cells(seed=seed, datagrams=datagrams)
    assert report.total_queue_dropped > 0, "bottleneck never overflowed"
    assert report.violation_count == 0, (
        "queue-overflow losses escaped invariant classification")
    in_ie = report.cell("In-IE")
    in_dh = report.cell("In-DH")
    assert in_ie.latency_mean is not None and in_dh.latency_mean is not None
    assert in_ie.latency_mean > in_dh.latency_mean, (
        "triangle route did not pay more latency than the direct route")
    assert in_ie.goodput < in_dh.goodput, (
        "triangle route did not lose more goodput than the direct route")
    return datagrams * len(report.cells), "datagrams"


def run_sweep_throughput(
    jobs: int = 1, specs: int = 8, datagrams: int = 40
) -> Tuple[int, str]:
    """Execute a fixed slice of the demo grid through the sweep executor.

    The unit is completed runs, so ``ops/sec`` is sweep throughput in
    runs per second.  Compare ``sweep_throughput`` (``jobs=1``, inline)
    against ``sweep_throughput_j4`` (``jobs=4``, spawn pool) to read
    off parallel scaling on the host; the report's ``meta.cpu_count``
    says how many cores the ratio could possibly reach.
    """
    from repro.experiment import SweepExecutor, demo_grid

    grid = demo_grid(seeds=[1996], datagrams=datagrams)
    expanded = grid.expand()[:specs]
    result = SweepExecutor(jobs=jobs).run(expanded)
    assert result.ok, "demo-grid sweep hit invariant violations"
    return result.runs, "runs"


def run_sweep_throughput_parallel(
    specs: int = 8, datagrams: int = 40
) -> Tuple[int, str]:
    """``sweep_throughput`` across a 4-worker spawn pool (same specs)."""
    return run_sweep_throughput(jobs=4, specs=specs, datagrams=datagrams)


def run_packet_sizing(n: int = 30_000) -> Tuple[int, str]:
    """Repeated ``wire_size`` over a 2-deep encapsulation stack.

    The §3.3 size benchmarks, link serialization, fragmentation checks
    and the trace layer all ask for the wire size of the same packet
    many times between mutations.
    """
    from repro.netsim.addressing import IPAddress
    from repro.netsim.encap import EncapScheme, encapsulate
    from repro.netsim.packet import IPProto, Packet

    inner = Packet(
        src=IPAddress("10.3.0.10"),
        dst=IPAddress("10.1.0.10"),
        proto=IPProto.UDP,
        payload_size=512,
    )
    mid = encapsulate(inner, IPAddress("10.1.0.1"), IPAddress("10.2.0.9"),
                      EncapScheme.IPIP)
    outer = encapsulate(mid, IPAddress("10.2.0.9"), IPAddress("10.2.0.1"),
                        EncapScheme.GRE)
    total = 0
    for _ in range(n):
        total += outer.wire_size
    assert total == n * outer.wire_size
    return n, "sizings"


def run_address_churn(n: int = 20_000) -> Tuple[int, str]:
    """Construct addresses from strings/ints the way routing code does.

    Routing tables, binding caches and header rewrites re-build
    ``IPAddress`` values from a small working set of dotted quads; the
    parse cost of that working set is what this measures.
    """
    from repro.netsim.addressing import IPAddress

    quads = [f"10.{i % 4}.{i % 8}.{i % 16}" for i in range(32)]
    total = 0
    for index in range(n):
        address = IPAddress(quads[index % 32])
        total += int(IPAddress(address.value))
    assert total > 0
    return n, "addresses"


def run_mega_world(hosts: int = 1_000_000, domains: Optional[int] = None):
    """Build a flyweight million-host world and spin its timer wheel.

    The population layer's acceptance workload (see
    :mod:`repro.netsim.population`): construct ``hosts`` registered
    mobile hosts as struct-of-arrays pool state, then run one full
    wheel rotation so every live slot gets its registration re-stamped.
    The asserts pin the layer's contract — flyweight state stays under
    200 bytes/host (tracemalloc-measured, so hidden per-host objects
    would fail the bar, not just inflate a number) and the wheel
    actually refreshes every host.  Extras carry the headline numbers
    (build seconds, bytes/host, refresh throughput) into the report.
    """
    import tracemalloc

    from repro.analysis import build_scenario

    population: Dict[str, Any] = {"hosts": hosts}
    if domains is not None:
        population["domains"] = domains
    tracemalloc.start()
    base_current, _ = tracemalloc.get_traced_memory()
    t0 = time.perf_counter()
    scenario = build_scenario(population=population)
    build_seconds = time.perf_counter() - t0
    current, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # Whole-world allocation per host: pool arrays plus every object the
    # build allocated (topology, HA, wheel) amortized over the hosts.
    bytes_per_host = (current - base_current) / hosts
    pop = scenario.population
    assert pop is not None
    pool_bytes_per_host = pop.state_bytes() / hosts
    assert pool_bytes_per_host < 200, (
        f"pool state is {pool_bytes_per_host:.0f} bytes/host (>= 200)")
    before = pop.pool.refreshes
    t1 = time.perf_counter()
    scenario.sim.run(until=scenario.sim.now + pop.wheel.period + 1.0)
    wheel_seconds = time.perf_counter() - t1
    refreshed = pop.pool.refreshes - before
    assert refreshed >= hosts, (
        f"wheel refreshed {refreshed} of {hosts} hosts in one rotation")
    return hosts, "hosts", {
        "build_seconds": build_seconds,
        "bytes_per_host": bytes_per_host,
        "pool_bytes_per_host": pool_bytes_per_host,
        "refreshes": refreshed,
        "refreshes_per_sec": refreshed / wheel_seconds
        if wheel_seconds > 0 else float("inf"),
    }


WORKLOADS: Dict[str, Callable[..., Tuple[int, str]]] = {
    "event_churn": run_event_churn,
    "event_cancel_churn": run_event_cancel_churn,
    "scenario_build": run_scenario_build,
    "scenario_traffic": run_scenario_traffic,
    "scenario_traffic_no_ff": run_scenario_traffic_no_ff,
    "fast_forward": run_fast_forward,
    "obs_overhead": run_obs_overhead,
    "ledger_overhead": run_ledger_overhead,
    "chaos_recovery": run_chaos_recovery,
    "chaos_recovery_no_ff": run_chaos_recovery_no_ff,
    "congestion": run_congestion,
    "sweep_throughput": run_sweep_throughput,
    "sweep_throughput_j4": run_sweep_throughput_parallel,
    "packet_sizing": run_packet_sizing,
    "address_churn": run_address_churn,
    "mega_world": run_mega_world,
}

# Fast-forward on/off pairs the report derives speedup deltas from.
FF_DELTA_PAIRS: Dict[str, str] = {
    "scenario_traffic": "scenario_traffic_no_ff",
    "chaos_recovery": "chaos_recovery_no_ff",
}

# Reduced iteration counts for CI smoke runs (--quick).
_QUICK_ARGS: Dict[str, Dict[str, int]] = {
    "event_churn": {"n": 5_000},
    "event_cancel_churn": {"n": 4_000},
    "scenario_traffic": {"datagrams": 50},
    "scenario_traffic_no_ff": {"datagrams": 50},
    "fast_forward": {"datagrams": 50},
    "obs_overhead": {"datagrams": 50},
    "ledger_overhead": {"datagrams": 50},
    "chaos_recovery": {"duration": 130.0},
    "chaos_recovery_no_ff": {"duration": 130.0},
    "congestion": {"datagrams": 200},
    "sweep_throughput": {"specs": 4, "datagrams": 20},
    "sweep_throughput_j4": {"specs": 4, "datagrams": 20},
    "packet_sizing": {"n": 4_000},
    "address_churn": {"n": 4_000},
    "mega_world": {"hosts": 20_000},
}


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------

def _time_workload(
    func: Callable[..., Tuple[int, str]],
    kwargs: Dict[str, int],
    repeat: int,
) -> Dict[str, Any]:
    best = float("inf")
    units, unit_name = 0, "ops"
    extras: Dict[str, Any] = {}
    for _ in range(repeat):
        start = time.perf_counter()
        outcome = func(**kwargs)
        elapsed = time.perf_counter() - start
        # Workloads return (units, unit) or (units, unit, extras) — the
        # extras dict carries workload-specific headline numbers (e.g.
        # mega_world's bytes/host) into the report alongside the timing.
        if len(outcome) == 3:
            units, unit_name, run_extras = outcome
        else:
            units, unit_name = outcome
            run_extras = {}
        if elapsed < best:
            best = elapsed
            extras = dict(run_extras)
    result = {
        "units": units,
        "unit": unit_name,
        "seconds": best,
        "ops_per_sec": units / best if best > 0 else float("inf"),
        "ns_per_op": best / units * 1e9 if units else 0.0,
    }
    if extras:
        result["extras"] = extras
    return result


def run_suite(quick: bool = False, repeat: int = 3) -> Dict[str, Any]:
    """Run every workload and return the structured results."""
    results: Dict[str, Any] = {}
    for name, func in WORKLOADS.items():
        kwargs = _QUICK_ARGS.get(name, {}) if quick else {}
        results[name] = _time_workload(func, kwargs, repeat=repeat)
    deltas: Dict[str, Any] = {}
    for on_name, off_name in FF_DELTA_PAIRS.items():
        on, off = results.get(on_name), results.get(off_name)
        if on and off and off["ops_per_sec"]:
            deltas[on_name] = {
                "ff_on_ops_per_sec": on["ops_per_sec"],
                "ff_off_ops_per_sec": off["ops_per_sec"],
                "speedup": on["ops_per_sec"] / off["ops_per_sec"],
            }
    return {
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "quick": quick,
            "repeat": repeat,
        },
        "results": results,
        "fast_forward_deltas": deltas,
    }


def compare(baseline: Dict[str, Any], current: Dict[str, Any]) -> Dict[str, float]:
    """Per-workload speedup factors (current ops/sec over baseline's)."""
    speedups: Dict[str, float] = {}
    base_results = baseline.get("results", {})
    for name, result in current.get("results", {}).items():
        base = base_results.get(name)
        if base and base.get("ops_per_sec"):
            speedups[name] = result["ops_per_sec"] / base["ops_per_sec"]
    return speedups


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable table of one suite run (plus speedups if merged)."""
    lines = ["workload                 units        sec       ops/sec     ns/op"]
    results = report.get("results") or report.get("optimized", {}).get("results", {})
    speedups = report.get("speedup", {})
    for name, result in results.items():
        line = (
            f"{name:<22} {result['units']:>8} {result['seconds']:>10.4f} "
            f"{result['ops_per_sec']:>13,.0f} {result['ns_per_op']:>9,.0f}"
        )
        if name in speedups:
            line += f"   x{speedups[name]:.2f}"
        lines.append(line)
    deltas = (report.get("fast_forward_deltas")
              or report.get("optimized", {}).get("fast_forward_deltas", {}))
    for name, delta in deltas.items():
        lines.append(
            f"fast-forward {name}: {delta['ff_on_ops_per_sec']:,.0f} on / "
            f"{delta['ff_off_ops_per_sec']:,.0f} off ops/sec "
            f"(x{delta['speedup']:.2f})")
    return "\n".join(lines)
