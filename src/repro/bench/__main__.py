"""``python -m repro.bench`` — run the substrate micro-benchmarks.

Examples::

    python -m repro.bench                          # print a table
    python -m repro.bench --quick                  # CI smoke run
    python -m repro.bench -o BENCH_PR1.json        # persist results
    python -m repro.bench --baseline old.json -o BENCH_PR1.json
        # merge: writes {"baseline": ..., "optimized": ..., "speedup": ...}
"""

from __future__ import annotations

import argparse
import json
import sys

from . import compare, render_report, run_suite, write_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Micro-benchmarks for the repro.netsim substrate.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke run)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions per workload (best-of)")
    parser.add_argument("-o", "--output", metavar="PATH",
                        help="write JSON results to PATH")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline JSON to compare against; with "
                             "--output, a merged before/after report is "
                             "written; exits nonzero if any workload "
                             "regresses past --regression-threshold")
    parser.add_argument("--regression-threshold", type=float, default=0.25,
                        metavar="FRACTION",
                        help="with --baseline, fail when any workload's "
                             "ops/sec drops by more than this fraction "
                             "(default 0.25)")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")

    report = run_suite(quick=args.quick, repeat=args.repeat)

    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            parser.error(f"cannot read baseline {args.baseline}: {error}")
        # A previously merged report can itself serve as the baseline.
        if "optimized" in baseline:
            baseline = baseline["optimized"]
        merged = {
            "baseline": baseline,
            "optimized": report,
            "speedup": compare(baseline, report),
        }
        print(render_report(merged))
        if args.output:
            write_report(merged, args.output)
        floor = 1.0 - args.regression_threshold
        regressed = {
            name: speedup
            for name, speedup in merged["speedup"].items()
            if speedup < floor
        }
        if regressed:
            for name, speedup in sorted(regressed.items()):
                print(f"regression: {name} at x{speedup:.2f} of baseline "
                      f"(floor x{floor:.2f})", file=sys.stderr)
            if args.output:
                print(f"\nwrote {args.output}")
            return 1
    else:
        print(render_report(report))
        if args.output:
            write_report(report, args.output)

    if args.output:
        print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
