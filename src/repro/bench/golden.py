"""Golden-trace digest: proof that optimization preserved determinism.

The substrate's contract is *identical seeds give identical traces*.
Performance work on the event heap, address interning, or size caching
must not perturb a single hop, timestamp, or byte count.  This module
runs the canonical scenario-traffic workload with a fixed seed and
digests the full global trace, normalized to exclude the only
process-global state in the simulator (packet/trace id counters, which
guarantee uniqueness, not absolute values — see ARCHITECTURE.md).

The digest is pinned in ``tests/netsim/test_golden_trace.py``; it was
captured on the pre-optimization engine and must never change unless
the *semantics* of the simulation change deliberately.
"""

from __future__ import annotations

import hashlib
from itertools import chain
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.trace import TraceLog

__all__ = ["trace_digest", "golden_trace_digest", "GOLDEN_SEED", "GOLDEN_DATAGRAMS"]

GOLDEN_SEED = 1401
GOLDEN_DATAGRAMS = 200


def trace_digest(trace: "TraceLog") -> Tuple[str, int]:
    """Digest a trace log: (sha256 hex, entry count).

    Every ``TraceLog.note`` call contributes one normalized line.
    Timestamps use exact float ``repr`` so even a single ULP of drift
    in event scheduling arithmetic changes the digest.  Normalization
    excludes only the process-global packet/trace id counters.  The
    chaos determinism tests reuse this over fault-injected runs: same
    plan + same seed must reproduce the digest exactly.
    """
    # One join + one update is byte-identical to per-line updates
    # (UTF-8 of a concatenation is the concatenation of UTF-8).  Fast-
    # forwarded entries carry a precomputed suffix of the seven constant
    # fields (see repro.netsim.fastforward) — only the timestamp varies
    # per replay, so only it is formatted here.
    # Suffixes are never empty (they start with "|"), so ``or`` is a
    # safe None-fallback.  Timestamps and suffixes are built in two
    # C-speed passes and interleaved by one join — byte-identical to
    # per-line concatenation (UTF-8 of a concatenation is the
    # concatenation of UTF-8).
    ds = list(map(vars, trace.entries))
    suffixes = [
        d.get("digest_suffix")
        or f"|{d['node']}|{d['action']}|{d['src']}|"
           f"{d['dst']}|{d['wire_size']}|{d['detail']}\n"
        for d in ds
    ]
    times = list(map(repr, [d["time"] for d in ds]))
    digest = hashlib.sha256(
        "".join(chain.from_iterable(zip(times, suffixes))).encode())
    return digest.hexdigest(), len(ds)


def golden_trace_digest(
    seed: int = GOLDEN_SEED, datagrams: int = GOLDEN_DATAGRAMS
) -> Tuple[str, int]:
    """Run the canonical traffic workload; return (sha256, entry count).

    Every ``TraceLog.note`` call — sends, forwards, tunnel entry/exit,
    deliveries, drops — contributes one normalized line.  Timestamps
    use exact float ``repr`` so even a single ULP of drift in event
    scheduling arithmetic changes the digest.

    The workload itself is the canonical traffic spec executed by the
    experiment runner — the same lifecycle every sweep cell runs — so
    the pinned digest also guards the runner's build/arm/drive order.
    """
    # Imported lazily: the runner imports trace_digest from this module.
    from repro.experiment import Runner, canonical_traffic_spec

    result = Runner().run(canonical_traffic_spec(seed=seed, datagrams=datagrams))
    return result.digest, result.trace_entries
