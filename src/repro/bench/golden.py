"""Golden-trace digest: proof that optimization preserved determinism.

The substrate's contract is *identical seeds give identical traces*.
Performance work on the event heap, address interning, or size caching
must not perturb a single hop, timestamp, or byte count.  This module
runs the canonical scenario-traffic workload with a fixed seed and
digests the full global trace, normalized to exclude the only
process-global state in the simulator (packet/trace id counters, which
guarantee uniqueness, not absolute values — see ARCHITECTURE.md).

The digest is pinned in ``tests/netsim/test_golden_trace.py``; it was
captured on the pre-optimization engine and must never change unless
the *semantics* of the simulation change deliberately.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.trace import TraceLog

__all__ = ["trace_digest", "golden_trace_digest", "GOLDEN_SEED", "GOLDEN_DATAGRAMS"]

GOLDEN_SEED = 1401
GOLDEN_DATAGRAMS = 200


def trace_digest(trace: "TraceLog") -> Tuple[str, int]:
    """Digest a trace log: (sha256 hex, entry count).

    Every ``TraceLog.note`` call contributes one normalized line.
    Timestamps use exact float ``repr`` so even a single ULP of drift
    in event scheduling arithmetic changes the digest.  Normalization
    excludes only the process-global packet/trace id counters.  The
    chaos determinism tests reuse this over fault-injected runs: same
    plan + same seed must reproduce the digest exactly.
    """
    digest = hashlib.sha256()
    for entry in trace.entries:
        digest.update(
            f"{entry.time!r}|{entry.node}|{entry.action}|{entry.src}|"
            f"{entry.dst}|{entry.wire_size}|{entry.detail}\n".encode()
        )
    return digest.hexdigest(), len(trace.entries)


def golden_trace_digest(
    seed: int = GOLDEN_SEED, datagrams: int = GOLDEN_DATAGRAMS
) -> Tuple[str, int]:
    """Run the canonical traffic workload; return (sha256, entry count).

    Every ``TraceLog.note`` call — sends, forwards, tunnel entry/exit,
    deliveries, drops — contributes one normalized line.  Timestamps
    use exact float ``repr`` so even a single ULP of drift in event
    scheduling arithmetic changes the digest.

    The workload itself is the canonical traffic spec executed by the
    experiment runner — the same lifecycle every sweep cell runs — so
    the pinned digest also guards the runner's build/arm/drive order.
    """
    # Imported lazily: the runner imports trace_digest from this module.
    from repro.experiment import Runner, canonical_traffic_spec

    result = Runner().run(canonical_traffic_spec(seed=seed, datagrams=datagrams))
    return result.digest, result.trace_entries
