"""Golden-trace digest: proof that optimization preserved determinism.

The substrate's contract is *identical seeds give identical traces*.
Performance work on the event heap, address interning, or size caching
must not perturb a single hop, timestamp, or byte count.  This module
runs the canonical scenario-traffic workload with a fixed seed and
digests the full global trace, normalized to exclude the only
process-global state in the simulator (packet/trace id counters, which
guarantee uniqueness, not absolute values — see ARCHITECTURE.md).

The digest is pinned in ``tests/netsim/test_golden_trace.py``; it was
captured on the pre-optimization engine and must never change unless
the *semantics* of the simulation change deliberately.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.trace import TraceLog

__all__ = ["trace_digest", "golden_trace_digest", "GOLDEN_SEED", "GOLDEN_DATAGRAMS"]

GOLDEN_SEED = 1401
GOLDEN_DATAGRAMS = 200


def trace_digest(trace: "TraceLog") -> Tuple[str, int]:
    """Digest a trace log: (sha256 hex, entry count).

    Every ``TraceLog.note`` call contributes one normalized line.
    Timestamps use exact float ``repr`` so even a single ULP of drift
    in event scheduling arithmetic changes the digest.  Normalization
    excludes only the process-global packet/trace id counters.  The
    chaos determinism tests reuse this over fault-injected runs: same
    plan + same seed must reproduce the digest exactly.
    """
    digest = hashlib.sha256()
    for entry in trace.entries:
        digest.update(
            f"{entry.time!r}|{entry.node}|{entry.action}|{entry.src}|"
            f"{entry.dst}|{entry.wire_size}|{entry.detail}\n".encode()
        )
    return digest.hexdigest(), len(trace.entries)


def golden_trace_digest(
    seed: int = GOLDEN_SEED, datagrams: int = GOLDEN_DATAGRAMS
) -> Tuple[str, int]:
    """Run the canonical traffic workload; return (sha256, entry count).

    Every ``TraceLog.note`` call — sends, forwards, tunnel entry/exit,
    deliveries, drops — contributes one normalized line.  Timestamps
    use exact float ``repr`` so even a single ULP of drift in event
    scheduling arithmetic changes the digest.
    """
    from repro.analysis import MH_HOME_ADDRESS, build_scenario
    from repro.mobileip import Awareness

    scenario = build_scenario(seed=seed, ch_awareness=Awareness.CONVENTIONAL)
    sock = scenario.mh.stack.udp_socket(7000)
    sock.on_receive(lambda *args: None)
    ch_sock = scenario.ch.stack.udp_socket()
    for index in range(datagrams):
        scenario.sim.events.schedule(
            index * 0.01,
            lambda: ch_sock.sendto("x", 100, MH_HOME_ADDRESS, 7000),
        )
    scenario.sim.run_for(30)
    return trace_digest(scenario.sim.trace)
