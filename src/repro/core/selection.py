"""Per-correspondent delivery-method selection (§7.1.2).

    "The mobile host keeps a cache of the currently selected delivery
    method associated with each target IP address.  This saves it from
    having to make the decision afresh for every packet and allows it
    to build up a history, for each correspondent host, of which
    communication methods have proven to be successful and which have
    not."

Three probe strategies, exactly the ones the paper weighs:

* **CONSERVATIVE_FIRST** — start at Out-IE; after a run of successes,
  tentatively try the next more aggressive mode (Out-DE, then Out-DH),
  "at each stage being prepared to return to the conservative method
  if the more aggressive method fails" [Fox96].
* **AGGRESSIVE_FIRST** — start at Out-DH; on failure fall back to
  Out-DE and then Out-IE.
* **RULE_SEEDED** — the paper's proposed resolution: consult the
  address-and-mask :class:`~repro.core.policy.MobilityPolicyTable` to
  decide *per destination* whether to begin optimistically or
  pessimistically (or to pin Out-IE for privacy/firewall reasons).

Failure signals come from the §7.1.2 retransmission detector
(:mod:`repro.core.feedback`); success signals are original packets
received from the correspondent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Set

from ..netsim.addressing import IPAddress
from .modes import OutMode
from .policy import Disposition, MobilityPolicyTable

__all__ = ["ProbeStrategy", "CorrespondentRecord", "DeliveryMethodCache"]

# The home-address mode ladder, most aggressive first (§7.1.2).
LADDER_AGGRESSIVE_FIRST: List[OutMode] = [
    OutMode.OUT_DH,
    OutMode.OUT_DE,
    OutMode.OUT_IE,
]
DEFAULT_UPGRADE_AFTER = 4   # consecutive successes before a tentative upgrade


class ProbeStrategy(Enum):
    CONSERVATIVE_FIRST = "conservative-first"
    AGGRESSIVE_FIRST = "aggressive-first"
    RULE_SEEDED = "rule-seeded"


@dataclass
class CorrespondentRecord:
    """History for one correspondent host."""

    current: OutMode
    pinned: bool = False                 # HOME_ONLY privacy pinning
    failed: Set[OutMode] = field(default_factory=set)
    failed_at: Dict[OutMode, float] = field(default_factory=dict)
    successes_at_current: int = 0
    packets_sent: int = 0
    mode_changes: int = 0
    suspicions: int = 0
    forgiveness: int = 0                 # failed-set clears (aging/forgiving)


class DeliveryMethodCache:
    """The per-correspondent mode cache with probe-strategy logic."""

    def __init__(
        self,
        strategy: ProbeStrategy = ProbeStrategy.RULE_SEEDED,
        policy: Optional[MobilityPolicyTable] = None,
        upgrade_after: int = DEFAULT_UPGRADE_AFTER,
        clock: Optional[Callable[[], float]] = None,
        failed_ttl: Optional[float] = None,
        forgive_after: Optional[int] = None,
    ):
        """``clock``/``failed_ttl``/``forgive_after`` control failed-mode
        aging — without them, one transient failure excludes a mode for
        that correspondent *forever*, which is exactly wrong for the
        outages the paper's recovery machinery exists to ride out:

        * ``failed_ttl`` (seconds, needs ``clock``): a failure verdict
          expires after this long, making the mode eligible for
          re-probing on the next success run.
        * ``forgive_after`` (consecutive successes): a sustained success
          run at the current mode clears the whole failed set — the
          network has demonstrably changed, so old verdicts are stale.

        All three default to ``None`` (no aging), preserving the
        original permanent-exclusion behaviour for direct cache users;
        :class:`~repro.core.decision.MobilityEngine` turns aging on.
        """
        if strategy is ProbeStrategy.RULE_SEEDED and policy is None:
            policy = MobilityPolicyTable()
        self.strategy = strategy
        self.policy = policy
        self.upgrade_after = upgrade_after
        self._clock = clock
        self.failed_ttl = failed_ttl
        self.forgive_after = forgive_after
        self._records: Dict[IPAddress, CorrespondentRecord] = {}

    # ------------------------------------------------------------------
    # Record lifecycle
    # ------------------------------------------------------------------
    def record_for(self, dst: IPAddress) -> CorrespondentRecord:
        dst = IPAddress(dst)
        record = self._records.get(dst)
        if record is None:
            record = self._records[dst] = self._fresh_record(dst)
        return record

    def _fresh_record(self, dst: IPAddress) -> CorrespondentRecord:
        if self.strategy is ProbeStrategy.AGGRESSIVE_FIRST:
            return CorrespondentRecord(current=OutMode.OUT_DH)
        if self.strategy is ProbeStrategy.CONSERVATIVE_FIRST:
            return CorrespondentRecord(current=OutMode.OUT_IE)
        # RULE_SEEDED: the policy table decides the starting point.
        assert self.policy is not None
        disposition = self.policy.lookup(dst)
        if disposition is Disposition.OPTIMISTIC:
            return CorrespondentRecord(current=OutMode.OUT_DH)
        if disposition is Disposition.HOME_ONLY:
            return CorrespondentRecord(current=OutMode.OUT_IE, pinned=True)
        # PESSIMISTIC and NO_MOBILE_IP (the latter is normally handled
        # before the cache, at the home/temporary decision) both start
        # conservative.
        return CorrespondentRecord(current=OutMode.OUT_IE)

    def forget(self, dst: IPAddress) -> None:
        self._records.pop(IPAddress(dst), None)

    def reset_all(self) -> None:
        """Drop every record — called when the mobile host moves, since
        path properties (filters, distances) may all have changed."""
        self._records.clear()

    # ------------------------------------------------------------------
    # The per-packet query
    # ------------------------------------------------------------------
    def mode_for(self, dst: IPAddress) -> OutMode:
        record = self.record_for(dst)
        record.packets_sent += 1
        return record.current

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def on_suspect(self, dst: IPAddress, reason: str = "") -> Optional[OutMode]:
        """The current mode appears to be failing: demote.

        Returns the new mode, or None if already at the most
        conservative (Out-IE is "the only method that can be relied
        upon to work in all situations" — there is nowhere left to go,
        and the failure is presumably not mode-related).
        """
        record = self.record_for(dst)
        self._expire_failed(record)
        record.suspicions += 1
        record.failed.add(record.current)
        if self._clock is not None:
            record.failed_at[record.current] = self._clock()
        record.successes_at_current = 0
        if record.current is OutMode.OUT_IE:
            return None
        index = LADDER_AGGRESSIVE_FIRST.index(record.current)
        for candidate in LADDER_AGGRESSIVE_FIRST[index + 1:]:
            if candidate not in record.failed:
                self._switch(record, candidate)
                return candidate
        self._switch(record, OutMode.OUT_IE)
        return OutMode.OUT_IE

    def on_progress(self, dst: IPAddress) -> Optional[OutMode]:
        """Forward progress at the current mode.  May tentatively
        upgrade (conservative-first behaviour) once the success run is
        long enough.  Returns the new mode if an upgrade happened."""
        record = self.record_for(dst)
        self._expire_failed(record)
        record.successes_at_current += 1
        if (
            record.failed
            and self.forgive_after is not None
            and record.successes_at_current >= self.forgive_after
        ):
            # Sustained success at this mode: the network has changed
            # enough that the old failure verdicts are stale.  Forgive,
            # so the upgrade logic below may re-probe up the ladder.
            record.failed.clear()
            record.failed_at.clear()
            record.forgiveness += 1
        if record.pinned:
            return None
        if not self._upgrades_enabled(dst):
            return None
        if record.successes_at_current < self.upgrade_after:
            return None
        candidate = self._next_more_aggressive(record)
        if candidate is None:
            return None
        self._switch(record, candidate)
        return candidate

    # ------------------------------------------------------------------
    @property
    def _reprobe_enabled(self) -> bool:
        """Whether failed verdicts can age out — and with them, whether
        a descended ladder can climb again."""
        return self.forgive_after is not None or (
            self._clock is not None and self.failed_ttl is not None
        )

    def _expire_failed(self, record: CorrespondentRecord) -> None:
        """Lazily drop failure verdicts older than ``failed_ttl``."""
        if self._clock is None or self.failed_ttl is None or not record.failed_at:
            return
        now = self._clock()
        expired = [
            mode for mode, when in record.failed_at.items()
            if now - when >= self.failed_ttl
        ]
        for mode in expired:
            record.failed_at.pop(mode, None)
            record.failed.discard(mode)
        if expired:
            record.forgiveness += 1

    def _upgrades_enabled(self, dst: IPAddress) -> bool:
        if self.strategy is ProbeStrategy.CONSERVATIVE_FIRST:
            return True
        if self.strategy is ProbeStrategy.AGGRESSIVE_FIRST:
            # Started at the top, so anything above the current mode
            # has already failed; the ladder only descends — unless
            # aging is on, in which case expired/forgiven verdicts make
            # re-probing upward meaningful again.
            return self._reprobe_enabled
        # RULE_SEEDED pessimistic destinations behave conservatively;
        # optimistic ones started at the top like aggressive-first.
        assert self.policy is not None
        return (
            self.policy.lookup(dst) is Disposition.PESSIMISTIC
            or self._reprobe_enabled
        )

    def _next_more_aggressive(
        self, record: CorrespondentRecord
    ) -> Optional[OutMode]:
        index = LADDER_AGGRESSIVE_FIRST.index(record.current)
        for candidate in reversed(LADDER_AGGRESSIVE_FIRST[:index]):
            if candidate not in record.failed:
                return candidate
        return None

    def _switch(self, record: CorrespondentRecord, mode: OutMode) -> None:
        record.current = mode
        record.successes_at_current = 0
        record.mode_changes += 1

    # ------------------------------------------------------------------
    @property
    def records(self) -> Dict[IPAddress, CorrespondentRecord]:
        return dict(self._records)

    def total_mode_changes(self) -> int:
        return sum(record.mode_changes for record in self._records.values())
