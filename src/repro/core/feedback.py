"""Delivery-failure detection from retransmission signals (§7.1.2).

The paper proposes the missing piece of RFC 826's fourteen-year-old
suggestion:

    "all IP clients (e.g. TCP) could indicate, for every IP packet they
    send and receive, whether the packet is an 'original' packet or a
    retransmission.  If the IP layer sees repeated retransmissions *to*
    a particular address, then this suggests that the currently
    selected delivery method may not be working.  Similarly, if the IP
    layer sees repeated retransmissions *from* a particular address,
    then that suggests that acknowledgements are not getting through."

:class:`RetransmissionDetector` implements exactly that.  It plugs into
:class:`repro.transport.sockets.TransportStack` as an observer; when
either counter for a remote address crosses the threshold it fires the
``on_suspect`` callback (wired to the selection machinery, which
demotes the delivery method) and resets.  Receiving an *original*
packet from the remote is forward progress and clears both counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..netsim.addressing import IPAddress
from ..transport.sockets import TransportObserver

__all__ = ["RemoteHealth", "RetransmissionDetector"]

DEFAULT_THRESHOLD = 3


@dataclass
class RemoteHealth:
    """Per-correspondent retransmission counters."""

    retx_to: int = 0        # our own retransmissions toward the remote
    retx_from: int = 0      # retransmissions we received from the remote
    originals_to: int = 0
    originals_from: int = 0
    suspicions_raised: int = 0


class RetransmissionDetector(TransportObserver):
    """Turn the §7.1.2 original/retransmission stream into failure events."""

    def __init__(
        self,
        threshold: int = DEFAULT_THRESHOLD,
        on_suspect: Optional[Callable[[IPAddress, str], None]] = None,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.on_suspect = on_suspect
        self._health: Dict[IPAddress, RemoteHealth] = {}

    def health(self, remote: IPAddress) -> RemoteHealth:
        key = IPAddress(remote)
        record = self._health.get(key)
        if record is None:
            record = self._health[key] = RemoteHealth()
        return record

    # ------------------------------------------------------------------
    # TransportObserver interface
    # ------------------------------------------------------------------
    def on_send(self, remote: IPAddress, retransmission: bool) -> None:
        record = self.health(remote)
        if retransmission:
            record.retx_to += 1
            if record.retx_to >= self.threshold:
                self._raise(remote, record, "repeated-retransmissions-to")
        else:
            record.originals_to += 1

    def on_receive(self, remote: IPAddress, retransmission: bool) -> None:
        record = self.health(remote)
        if retransmission:
            record.retx_from += 1
            if record.retx_from >= self.threshold:
                self._raise(remote, record, "repeated-retransmissions-from")
        else:
            # An original packet arrived: the current delivery method is
            # working in both directions well enough for forward progress.
            record.originals_from += 1
            record.retx_to = 0
            record.retx_from = 0

    # ------------------------------------------------------------------
    def _raise(self, remote: IPAddress, record: RemoteHealth, reason: str) -> None:
        record.suspicions_raised += 1
        record.retx_to = 0
        record.retx_from = 0
        if self.on_suspect is not None:
            self.on_suspect(IPAddress(remote), reason)

    def reset(self, remote: IPAddress) -> None:
        """Forget state for a remote (e.g. after a deliberate mode change)."""
        self._health.pop(IPAddress(remote), None)

    def reset_all(self) -> None:
        """Forget every remote's counters.

        Called when the mobile host moves: retransmissions counted on
        the old path say nothing about the new one, and letting them
        stand would immediately demote a freshly probed mode.  Clearing
        in place (rather than replacing the detector) keeps any held
        references — the transport stack's observer list — valid.
        """
        self._health.clear()
