"""Figure 10: the Internet Mobility 4x4 grid.

Sixteen (InMode, OutMode) combinations, classified exactly as the
paper's figure shades them:

* **USEFUL** (7 cells, unshaded) — the combinations §6.1-§6.4 describe.
* **VALID_UNLIKELY** (3 cells, lightly shaded) — "would work correctly
  with current protocols such as TCP, but for other reasons would not
  normally be used": In-DE/Out-IE, In-DH/Out-IE, In-DH/Out-DE.
* **INAPPLICABLE** (6 cells, darkly shaded) — "would not work correctly
  with current protocols such as TCP": every remaining cell of the
  fourth row and fourth column, per §6.5's argument that using the
  temporary address in one direction mandates it in the other.

Each cell also carries its *requirements* — the preconditions Figure 10
prints in the box — which the grid-matrix benchmark checks empirically
by running all sixteen combinations through the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, List, Tuple

from .modes import InMode, OutMode

__all__ = [
    "CellClass",
    "Requirement",
    "GridCell",
    "FourByFourGrid",
    "GRID",
]


class CellClass(Enum):
    USEFUL = "useful"
    VALID_UNLIKELY = "valid-but-unlikely"     # light grey in Figure 10
    INAPPLICABLE = "inapplicable"             # dark grey in Figure 10


class Requirement(Enum):
    """Preconditions named in Figure 10's cells."""

    NONE = "works everywhere"
    DECAP_CAPABLE_CH = "correspondent can decapsulate"
    NO_SOURCE_FILTERING = "no security-conscious routers on the path"
    MOBILE_AWARE_CH = "fully mobile-aware correspondent"
    SAME_SEGMENT = "both hosts on same network segment"
    FORGOES_MOBILITY = "forgoes benefits of Mobile IP"


@dataclass(frozen=True)
class GridCell:
    in_mode: InMode
    out_mode: OutMode
    cell_class: CellClass
    requirements: FrozenSet[Requirement]
    note: str

    @property
    def works_with_tcp(self) -> bool:
        """Dark cells are exactly those that break TCP (§6.5)."""
        return self.cell_class is not CellClass.INAPPLICABLE

    @property
    def survives_movement(self) -> bool:
        """Whether established connections survive a mid-stream move.

        Any cell involving the temporary address as a connection
        endpoint loses its packets when the care-of address changes.
        """
        return (
            self.in_mode.uses_home_address and self.out_mode.uses_home_address
        )

    @property
    def key(self) -> Tuple[InMode, OutMode]:
        return (self.in_mode, self.out_mode)


def _cell(
    in_mode: InMode,
    out_mode: OutMode,
    cell_class: CellClass,
    requirements: Tuple[Requirement, ...],
    note: str,
) -> GridCell:
    return GridCell(in_mode, out_mode, cell_class, frozenset(requirements), note)


_CELLS: List[GridCell] = [
    # ---- Row A: In-IE (conventional correspondent host) --------------
    _cell(InMode.IN_IE, OutMode.OUT_IE, CellClass.USEFUL,
          (Requirement.NONE,),
          "Most conservative: most reliable, least efficient."),
    _cell(InMode.IN_IE, OutMode.OUT_DE, CellClass.USEFUL,
          (Requirement.DECAP_CAPABLE_CH,),
          "Requires only decapsulation capability of the correspondent."),
    _cell(InMode.IN_IE, OutMode.OUT_DH, CellClass.USEFUL,
          (Requirement.NO_SOURCE_FILTERING,),
          "Requires no security-conscious routers on the path."),
    _cell(InMode.IN_IE, OutMode.OUT_DT, CellClass.INAPPLICABLE,
          (),
          "CH would reply to the temporary address, not via the HA."),
    # ---- Row B: In-DE (mobile-aware correspondent host) --------------
    _cell(InMode.IN_DE, OutMode.OUT_IE, CellClass.VALID_UNLIKELY,
          (Requirement.MOBILE_AWARE_CH,),
          "Valid, but if the CH can send directly the MH should too (§6.2)."),
    _cell(InMode.IN_DE, OutMode.OUT_DE, CellClass.USEFUL,
          (Requirement.MOBILE_AWARE_CH,),
          "Requires fully mobile-aware correspondent host."),
    _cell(InMode.IN_DE, OutMode.OUT_DH, CellClass.USEFUL,
          (Requirement.MOBILE_AWARE_CH, Requirement.NO_SOURCE_FILTERING),
          "Avoids encapsulation overhead on replies."),
    _cell(InMode.IN_DE, OutMode.OUT_DT, CellClass.INAPPLICABLE,
          (),
          "Temporary source breaks the CH's association with the home address."),
    # ---- Row C: In-DH (both hosts on same network segment) -----------
    _cell(InMode.IN_DH, OutMode.OUT_IE, CellClass.VALID_UNLIKELY,
          (Requirement.SAME_SEGMENT,),
          "Valid, but a one-hop peer deserves a one-hop reply (§6.3)."),
    _cell(InMode.IN_DH, OutMode.OUT_DE, CellClass.VALID_UNLIKELY,
          (Requirement.SAME_SEGMENT, Requirement.DECAP_CAPABLE_CH),
          "Valid, but a one-hop peer deserves a one-hop reply (§6.3)."),
    _cell(InMode.IN_DH, OutMode.OUT_DH, CellClass.USEFUL,
          (Requirement.SAME_SEGMENT,),
          "Requires both hosts to be on same network segment."),
    _cell(InMode.IN_DH, OutMode.OUT_DT, CellClass.INAPPLICABLE,
          (),
          "Mixing temporary and permanent endpoints is of no use (§6.5)."),
    # ---- Row D: In-DT (forgoing mobility support) ---------------------
    _cell(InMode.IN_DT, OutMode.OUT_IE, CellClass.INAPPLICABLE,
          (),
          "CH addressed the temporary address; replies must use it too."),
    _cell(InMode.IN_DT, OutMode.OUT_DE, CellClass.INAPPLICABLE,
          (),
          "CH addressed the temporary address; replies must use it too."),
    _cell(InMode.IN_DT, OutMode.OUT_DH, CellClass.INAPPLICABLE,
          (),
          "CH cannot associate a home-address reply with its packets."),
    _cell(InMode.IN_DT, OutMode.OUT_DT, CellClass.USEFUL,
          (Requirement.FORGOES_MOBILITY,),
          "Most efficient, but forgoes benefits of Mobile IP."),
]


class FourByFourGrid:
    """The complete Figure 10 object."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[InMode, OutMode], GridCell] = {
            cell.key: cell for cell in _CELLS
        }

    def cell(self, in_mode: InMode, out_mode: OutMode) -> GridCell:
        return self._cells[(in_mode, out_mode)]

    def cells(self) -> List[GridCell]:
        return list(self._cells.values())

    def cells_of(self, cell_class: CellClass) -> List[GridCell]:
        return [c for c in self._cells.values() if c.cell_class is cell_class]

    @property
    def useful(self) -> List[GridCell]:
        return self.cells_of(CellClass.USEFUL)

    @property
    def valid_unlikely(self) -> List[GridCell]:
        return self.cells_of(CellClass.VALID_UNLIKELY)

    @property
    def inapplicable(self) -> List[GridCell]:
        return self.cells_of(CellClass.INAPPLICABLE)

    def row(self, in_mode: InMode) -> List[GridCell]:
        return [self._cells[(in_mode, out)] for out in OutMode]

    def column(self, out_mode: OutMode) -> List[GridCell]:
        return [self._cells[(im, out_mode)] for im in InMode]

    def best_cell(
        self,
        same_segment: bool,
        ch_mobile_aware: bool,
        ch_decap_capable: bool,
        path_filtered: bool,
        needs_mobility: bool,
    ) -> GridCell:
        """Pick the best available cell for a situation (§6 narrative).

        Preference order follows the paper: forgo Mobile IP entirely
        when the application does not need it; otherwise use the
        same-segment shortcut when available; otherwise the mobile-aware
        direct path; otherwise fall back to the conventional row, where
        the outgoing choice is constrained by filtering and CH
        decapsulation capability.
        """
        if not needs_mobility:
            return self.cell(InMode.IN_DT, OutMode.OUT_DT)
        if same_segment:
            return self.cell(InMode.IN_DH, OutMode.OUT_DH)
        in_mode = InMode.IN_DE if ch_mobile_aware else InMode.IN_IE
        if not path_filtered:
            return self.cell(in_mode, OutMode.OUT_DH)
        if ch_decap_capable or ch_mobile_aware:
            return self.cell(in_mode, OutMode.OUT_DE)
        return self.cell(in_mode, OutMode.OUT_IE)

    def render(self) -> str:
        """ASCII rendering of Figure 10."""
        col_width = 24
        marks = {
            CellClass.USEFUL: " ",
            CellClass.VALID_UNLIKELY: "~",
            CellClass.INAPPLICABLE: "#",
        }
        header = " " * 10 + "".join(
            out.value.center(col_width) for out in OutMode
        )
        lines = [header, "-" * len(header)]
        for in_mode in InMode:
            row_cells = []
            for out_mode in OutMode:
                cell = self.cell(in_mode, out_mode)
                mark = marks[cell.cell_class]
                label = f"[{mark}] {cell.cell_class.value}"
                row_cells.append(label.center(col_width))
            lines.append(in_mode.value.ljust(10) + "".join(row_cells))
        lines.append("-" * len(header))
        lines.append("legend: [ ] useful   [~] valid but unlikely   [#] inapplicable")
        return "\n".join(lines)


GRID = FourByFourGrid()
