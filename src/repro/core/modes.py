"""The eight delivery modes: four outgoing (§4) and four incoming (§5).

Naming follows the paper exactly:

==========  =============================================  ==============
Mode        Meaning                                        Paper section
==========  =============================================  ==============
Out-IE      Outgoing, Indirect, Encapsulated               §4 (conservative)
Out-DE      Outgoing, Direct, Encapsulated                 §4
Out-DH      Outgoing, Direct, Home address                 §4
Out-DT      Outgoing, Direct, Temporary address            §4 (no Mobile IP)
In-IE       Incoming, Indirect, Encapsulated               §5
In-DE       Incoming, Direct, Encapsulated                 §5
In-DH       Incoming, Direct, Home address (same segment)  §5
In-DT       Incoming, Direct, Temporary address            §5 (no Mobile IP)
==========  =============================================  ==============

Each mode is *defined* by the addresses it puts in the inner and outer
IP headers (the paper's S/D/s/d tables, Figures 6-9).  This module
provides both directions of that mapping:

* ``build_outgoing`` / ``build_incoming`` construct correctly-addressed
  (and, where required, encapsulated) packets for a mode;
* ``classify_outgoing`` / ``classify_incoming`` recover the mode from a
  packet on the wire, given the addresses involved — this is what lets
  tests assert that a whole end-to-end scenario used the mode it was
  supposed to.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..netsim.addressing import IPAddress
from ..netsim.encap import EncapScheme, encapsulate
from ..netsim.packet import Packet

__all__ = [
    "OutMode",
    "InMode",
    "AddressPlan",
    "ModeError",
    "build_outgoing",
    "build_incoming_direct",
    "classify_outgoing",
    "classify_incoming",
]


class ModeError(Exception):
    """Raised when a packet cannot be built or classified for a mode."""


class OutMode(Enum):
    """How the mobile host sends packets to a correspondent (§4)."""

    OUT_IE = "Out-IE"   # tunnel via home agent (conservative)
    OUT_DE = "Out-DE"   # tunnel directly to a decap-capable CH
    OUT_DH = "Out-DH"   # plain packet, home source (needs permissive net)
    OUT_DT = "Out-DT"   # plain packet, temporary source (no Mobile IP)

    @property
    def encapsulated(self) -> bool:
        return self in (OutMode.OUT_IE, OutMode.OUT_DE)

    @property
    def indirect(self) -> bool:
        return self is OutMode.OUT_IE

    @property
    def uses_home_address(self) -> bool:
        """Whether the correspondent sees the permanent home address."""
        return self is not OutMode.OUT_DT

    @property
    def conservativeness(self) -> int:
        """Higher = more conservative (paper §7.1.2 probe ordering)."""
        return {
            OutMode.OUT_DH: 0,
            OutMode.OUT_DE: 1,
            OutMode.OUT_IE: 2,
            OutMode.OUT_DT: -1,  # outside the home-address ladder
        }[self]


class InMode(Enum):
    """How a correspondent's packets reach the mobile host (§5)."""

    IN_IE = "In-IE"     # via the home agent's tunnel
    IN_DE = "In-DE"     # CH encapsulates directly to the care-of address
    IN_DH = "In-DH"     # link-layer direct on the same segment
    IN_DT = "In-DT"     # plain packet to the temporary address

    @property
    def encapsulated(self) -> bool:
        return self in (InMode.IN_IE, InMode.IN_DE)

    @property
    def indirect(self) -> bool:
        return self is InMode.IN_IE

    @property
    def uses_home_address(self) -> bool:
        return self is not InMode.IN_DT

    @property
    def ch_requirement(self) -> str:
        """What the correspondent must be capable of (Figure 10 rows)."""
        return {
            InMode.IN_IE: "conventional correspondent host",
            InMode.IN_DE: "mobile-aware correspondent host",
            InMode.IN_DH: "both hosts on same network segment",
            InMode.IN_DT: "forgoing mobility support",
        }[self]


@dataclass(frozen=True)
class AddressPlan:
    """The cast of addresses in one mobile conversation.

    ``home`` — the mobile host's permanent home address (MH);
    ``care_of`` — its temporary care-of address (COA);
    ``home_agent`` — the home agent's address (HA);
    ``correspondent`` — the correspondent host's address (CH).
    """

    home: IPAddress
    care_of: IPAddress
    home_agent: IPAddress
    correspondent: IPAddress


# ----------------------------------------------------------------------
# Outgoing construction (Figures 6 and 7)
# ----------------------------------------------------------------------

def build_outgoing(
    mode: OutMode,
    plan: AddressPlan,
    payload: object = None,
    payload_size: int = 0,
    proto=None,
    scheme: EncapScheme = EncapScheme.IPIP,
) -> Packet:
    """Build an outgoing packet per the mode's address table.

    The inner/only packet carries the transport payload.  For the
    encapsulated modes the outer packet is returned (its payload is the
    inner packet).
    """
    from ..netsim.packet import IPProto

    proto = proto if proto is not None else IPProto.UDP

    if mode is OutMode.OUT_DT:
        # S = temporary care-of address, D = correspondent (Figure 6).
        return Packet(
            src=plan.care_of, dst=plan.correspondent, proto=proto,
            payload=payload, payload_size=payload_size,
        )
    inner = Packet(
        # S = permanent home address, D = correspondent.
        src=plan.home, dst=plan.correspondent, proto=proto,
        payload=payload, payload_size=payload_size,
    )
    if mode is OutMode.OUT_DH:
        return inner
    # Encapsulated modes: s = care-of, d = HA (Out-IE) or CH (Out-DE)
    # (Figure 7).
    outer_dst = plan.home_agent if mode is OutMode.OUT_IE else plan.correspondent
    return encapsulate(inner, plan.care_of, outer_dst, scheme=scheme)


def classify_outgoing(packet: Packet, plan: AddressPlan) -> OutMode:
    """Recover the outgoing mode from a wire packet (Figures 6/7)."""
    if packet.is_encapsulated or packet.proto.name in ("IPIP", "GRE", "MINENC"):
        if packet.src != plan.care_of:
            raise ModeError(
                f"encapsulated outgoing packet with outer src {packet.src}, "
                f"expected care-of {plan.care_of}"
            )
        if packet.dst == plan.home_agent:
            return OutMode.OUT_IE
        if packet.dst == plan.correspondent:
            return OutMode.OUT_DE
        raise ModeError(f"outer destination {packet.dst} is neither HA nor CH")
    if packet.dst != plan.correspondent:
        raise ModeError(f"outgoing packet not addressed to CH: {packet.dst}")
    if packet.src == plan.home:
        return OutMode.OUT_DH
    if packet.src == plan.care_of:
        return OutMode.OUT_DT
    raise ModeError(f"outgoing source {packet.src} is neither home nor care-of")


# ----------------------------------------------------------------------
# Incoming construction (Figures 8 and 9)
# ----------------------------------------------------------------------

def build_incoming_direct(
    mode: InMode,
    plan: AddressPlan,
    payload: object = None,
    payload_size: int = 0,
    proto=None,
    scheme: EncapScheme = EncapScheme.IPIP,
) -> Packet:
    """Build the packet a correspondent (or, for In-IE, the home agent)
    emits toward the mobile host.

    For In-IE this returns what the *home agent* sends after capture
    (outer s = HA); the original CH packet is the inner one.  For In-DE
    the CH itself encapsulates (outer s = CH).  In-DH and In-DT are
    plain packets differing only in destination address.
    """
    from ..netsim.packet import IPProto

    proto = proto if proto is not None else IPProto.UDP

    if mode is InMode.IN_DT:
        # S = CH, D = temporary care-of address (Figure 8).
        return Packet(
            src=plan.correspondent, dst=plan.care_of, proto=proto,
            payload=payload, payload_size=payload_size,
        )
    inner = Packet(
        # S = CH, D = permanent home address.
        src=plan.correspondent, dst=plan.home, proto=proto,
        payload=payload, payload_size=payload_size,
    )
    if mode is InMode.IN_DH:
        return inner
    # Encapsulated: d = care-of; s = HA (In-IE) or CH (In-DE) (Figure 9).
    outer_src = plan.home_agent if mode is InMode.IN_IE else plan.correspondent
    return encapsulate(inner, outer_src, plan.care_of, scheme=scheme)


def classify_incoming(packet: Packet, plan: AddressPlan) -> InMode:
    """Recover the incoming mode from the packet as the MH receives it."""
    if packet.is_encapsulated or packet.proto.name in ("IPIP", "GRE", "MINENC"):
        if packet.dst != plan.care_of:
            raise ModeError(
                f"encapsulated incoming packet with outer dst {packet.dst}, "
                f"expected care-of {plan.care_of}"
            )
        if packet.src == plan.home_agent:
            return InMode.IN_IE
        if packet.src == plan.correspondent:
            return InMode.IN_DE
        raise ModeError(f"outer source {packet.src} is neither HA nor CH")
    if packet.src != plan.correspondent:
        raise ModeError(f"incoming packet not from CH: {packet.src}")
    if packet.dst == plan.home:
        return InMode.IN_DH
    if packet.dst == plan.care_of:
        return InMode.IN_DT
    raise ModeError(f"incoming destination {packet.dst} is neither home nor care-of")
