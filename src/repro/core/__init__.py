"""The paper's primary contribution: the 4x4 grid and its machinery.

* :mod:`repro.core.modes`      — the eight delivery modes and their
  address tables (Figures 6-9).
* :mod:`repro.core.grid`       — Figure 10: cell classification,
  requirements, and the best-cell chooser.
* :mod:`repro.core.policy`     — the address-and-mask mobility policy
  table (§7, §7.1.2).
* :mod:`repro.core.selection`  — the per-correspondent delivery-method
  cache and the three probe strategies (§7.1.2).
* :mod:`repro.core.heuristics` — bind-address intent and port
  heuristics (§7.1.1), plus the multicast bypass (§6.4).
* :mod:`repro.core.feedback`   — the retransmission-signal failure
  detector the paper proposes (§7.1.2).
* :mod:`repro.core.decision`   — :class:`MobilityEngine`, gluing all of
  the above into the two decisions a mobile host makes.
"""

from .decision import CorrespondentKnowledge, MobilityEngine
from .feedback import RemoteHealth, RetransmissionDetector
from .grid import GRID, CellClass, FourByFourGrid, GridCell, Requirement
from .heuristics import AddressChoice, BindIntent, PortHeuristics
from .modes import (
    AddressPlan,
    InMode,
    ModeError,
    OutMode,
    build_incoming_direct,
    build_outgoing,
    classify_incoming,
    classify_outgoing,
)
from .policy import Disposition, MobilityPolicyTable, PolicyRule
from .selection import CorrespondentRecord, DeliveryMethodCache, ProbeStrategy

__all__ = [
    "CorrespondentKnowledge",
    "MobilityEngine",
    "RemoteHealth",
    "RetransmissionDetector",
    "GRID",
    "CellClass",
    "FourByFourGrid",
    "GridCell",
    "Requirement",
    "AddressChoice",
    "BindIntent",
    "PortHeuristics",
    "AddressPlan",
    "InMode",
    "ModeError",
    "OutMode",
    "build_incoming_direct",
    "build_outgoing",
    "classify_incoming",
    "classify_outgoing",
    "Disposition",
    "MobilityPolicyTable",
    "PolicyRule",
    "CorrespondentRecord",
    "DeliveryMethodCache",
    "ProbeStrategy",
]
