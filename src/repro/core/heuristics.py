"""Address-choice heuristics (§7.1.1).

Two mechanisms decide whether a conversation uses the permanent home
address (and therefore Mobile IP) or the temporary care-of address
(Out-DT, "no Mobile IP"):

1. **Explicit binding**: "If the application binds its socket to the
   source address of (any of) the machine's physical interface(s),
   then the packets sent through that socket are sent ... using
   Out-DT, honoring the application's desired source address."
   Binding to the permanent home address (or not binding) signals a
   mobility-unaware application and hands the decision to heuristics.

2. **Port heuristics**: "connections to port 80 are likely to be HTTP
   requests and can safely use Out-DT.  Similarly, UDP packets
   addressed to UDP port 53 are likely to be DNS requests and can also
   safely use Out-DT."

3. **Multicast bypass** (§6.4): multicast sends should "join the
   multicast group through its real physical interface on the current
   local network" — i.e. use the temporary address, not the home
   tunnel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from ..netsim.addressing import IPAddress
from ..netsim.packet import IPProto

__all__ = ["AddressChoice", "BindIntent", "PortHeuristics"]


class AddressChoice:
    """What the §7.1.1 decision yields for a conversation."""

    HOME = "home"            # use Mobile IP (one of the home-address modes)
    TEMPORARY = "temporary"  # Out-DT / In-DT, no Mobile IP


class BindIntent:
    """Interpretation of a socket's bound address (§7.1.1).

    ``interpret`` returns the forced choice, or None when the binding
    expresses no preference and heuristics should decide.
    """

    def __init__(self, home_address: IPAddress):
        self.home_address = IPAddress(home_address)

    def interpret(
        self,
        bound: Optional[IPAddress],
        physical_addresses: Set[IPAddress],
    ) -> Optional[str]:
        if bound is None or bound.is_unspecified:
            return None  # unbound: not mobile-aware, use heuristics
        bound = IPAddress(bound)
        if bound == self.home_address:
            return None  # home binding: treated as not mobile-aware (§7.1.1)
        if bound in physical_addresses:
            return AddressChoice.TEMPORARY  # explicit care-of bind: Out-DT
        # Bound to an address we no longer hold (a stale care-of after a
        # move): honor the application's intent but it will fail — the
        # paper's Out-DT disadvantage.
        return AddressChoice.TEMPORARY


@dataclass
class PortHeuristics:
    """Port-number rules for unaware applications (§7.1.1).

    The defaults are the two examples from the paper; applications and
    tests may add more (e.g. POP3's client-originated retrieval pattern
    that §2 cites as the trend these heuristics ride on).
    """

    tcp_temporary_ports: Set[int] = field(default_factory=lambda: {80})
    udp_temporary_ports: Set[int] = field(default_factory=lambda: {53})

    def add_rule(self, proto: IPProto, port: int) -> None:
        self._ports_for(proto).add(port)

    def remove_rule(self, proto: IPProto, port: int) -> None:
        self._ports_for(proto).discard(port)

    def _ports_for(self, proto: IPProto) -> Set[int]:
        if proto is IPProto.TCP:
            return self.tcp_temporary_ports
        if proto is IPProto.UDP:
            return self.udp_temporary_ports
        raise ValueError(f"no port heuristics for {proto.name}")

    def choose(
        self,
        destination: IPAddress,
        dst_port: int,
        proto: IPProto,
    ) -> str:
        """The heuristic decision for an unbound/home-bound socket."""
        if destination.is_multicast:
            return AddressChoice.TEMPORARY  # §6.4 multicast bypass
        if proto in (IPProto.TCP, IPProto.UDP) and dst_port in self._ports_for(proto):
            return AddressChoice.TEMPORARY
        return AddressChoice.HOME
