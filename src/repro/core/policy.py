"""The mobility policy table (§7 and §7.1.2).

Two roles, both from the paper:

1. §7: "We override the IP route lookup routine and replace it with a
   routine that consults a mobility policy table before the usual
   route table."  The table decides, per destination, whether a packet
   should use Mobile IP at all.
2. §7.1.2: "allow the user ... to specify rules stating which
   addresses Mobile IP should begin using in an optimistic mode and
   which addresses it should begin using in a pessimistic mode.  These
   rules could be specified similarly to the way routing table entries
   are currently specified, as an address and a mask value."

Rules are (prefix → disposition) entries matched longest-prefix-first,
exactly like a routing table.  Dispositions:

* ``OPTIMISTIC``   — start conversations at Out-DH and fall back;
* ``PESSIMISTIC``  — start at Out-IE and tentatively upgrade;
* ``NO_MOBILE_IP`` — bypass Mobile IP (Out-DT) for this destination;
* ``HOME_ONLY``    — always tunnel via the home agent (the privacy
  motivation of §4 Out-IE: "mobile users may not wish to reveal their
  current location").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from ..netsim.addressing import IPAddress, Network

__all__ = ["Disposition", "PolicyRule", "MobilityPolicyTable"]


class Disposition(Enum):
    OPTIMISTIC = "optimistic"       # begin at Out-DH
    PESSIMISTIC = "pessimistic"     # begin at Out-IE
    NO_MOBILE_IP = "no-mobile-ip"   # use Out-DT
    HOME_ONLY = "home-only"         # always Out-IE (privacy / firewall)


@dataclass(frozen=True)
class PolicyRule:
    """One address-and-mask rule, routing-table style."""

    prefix: Network
    disposition: Disposition

    def __str__(self) -> str:
        return f"{self.prefix} -> {self.disposition.value}"


class MobilityPolicyTable:
    """Longest-prefix-match table of :class:`PolicyRule` entries."""

    def __init__(self, default: Disposition = Disposition.PESSIMISTIC):
        self.default = default
        self._rules: List[PolicyRule] = []

    def add(self, prefix: Network | str, disposition: Disposition) -> PolicyRule:
        prefix = prefix if isinstance(prefix, Network) else Network(prefix)
        rule = PolicyRule(prefix, disposition)
        self._rules.append(rule)
        return rule

    def remove(self, prefix: Network | str) -> int:
        prefix = prefix if isinstance(prefix, Network) else Network(prefix)
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.prefix != prefix]
        return before - len(self._rules)

    def lookup(self, destination: IPAddress) -> Disposition:
        """The disposition for a destination (longest prefix wins)."""
        best: Optional[PolicyRule] = None
        for rule in self._rules:
            if not rule.prefix.contains(destination):
                continue
            if best is None or rule.prefix.prefix_len > best.prefix.prefix_len:
                best = rule
        return best.disposition if best is not None else self.default

    @property
    def rules(self) -> List[PolicyRule]:
        return list(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __str__(self) -> str:
        lines = [str(rule) for rule in sorted(
            self._rules, key=lambda r: -r.prefix.prefix_len
        )]
        lines.append(f"default -> {self.default.value}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # User configuration (§7.1.2: "allow the user, as part of the
    # configuration of a Mobile IP machine, to specify rules")
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "MobilityPolicyTable":
        """Build a table from a routing-table-style config.

        One rule per line, ``<prefix> <disposition>``; a ``default``
        line sets the fallback; ``#`` starts a comment::

            # corporate laptop policy
            default     pessimistic
            10.1.0.0/16 home-only      # everything at HQ stays private
            10.3.0.0/16 optimistic     # the lab network never filters
            192.0.2.0/24 no-mobile-ip  # public kiosks: plain IP only
        """
        table = cls()
        dispositions = {d.value: d for d in Disposition}
        for line_number, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"line {line_number}: expected '<prefix> <disposition>', "
                    f"got {raw!r}"
                )
            target, disposition_name = parts
            disposition = dispositions.get(disposition_name.lower())
            if disposition is None:
                raise ValueError(
                    f"line {line_number}: unknown disposition "
                    f"{disposition_name!r} (valid: "
                    f"{', '.join(sorted(dispositions))})"
                )
            if target.lower() == "default":
                table.default = disposition
            else:
                try:
                    table.add(target, disposition)
                except Exception as exc:
                    raise ValueError(
                        f"line {line_number}: bad prefix {target!r}: {exc}"
                    ) from exc
        return table

    def dump(self) -> str:
        """The inverse of :meth:`parse`: a reloadable config text."""
        lines = [f"default {self.default.value}"]
        for rule in sorted(self._rules, key=lambda r: -r.prefix.prefix_len):
            lines.append(f"{rule.prefix} {rule.disposition.value}")
        return "\n".join(lines)
