"""The mobility engine: everything §7.1 wires together.

One :class:`MobilityEngine` lives on each mobile host and makes the two
decisions of §7.1 for it:

1. **Temporary address or home address?** (§7.1.1) — via explicit
   socket bindings (:class:`~repro.core.heuristics.BindIntent`) and
   port heuristics (:class:`~repro.core.heuristics.PortHeuristics`).
   This runs at the transport decision point: the engine is installed
   as the stack's source selector, so it fires exactly when "TCP
   decides what address to use as the endpoint identifier".
2. **Which home-address method?** (§7.1.2) — via the per-correspondent
   :class:`~repro.core.selection.DeliveryMethodCache`, seeded by the
   :class:`~repro.core.policy.MobilityPolicyTable` and driven by the
   :class:`~repro.core.feedback.RetransmissionDetector`.

The engine is deliberately mechanism-free: it never touches packets.
The mobile host (:mod:`repro.mobileip.mobile_host`) asks it for
decisions and performs the sends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from ..netsim.addressing import IPAddress
from ..netsim.packet import IPProto
from ..transport.sockets import TransportObserver
from .feedback import RetransmissionDetector
from .heuristics import AddressChoice, BindIntent, PortHeuristics
from .modes import OutMode
from .policy import Disposition, MobilityPolicyTable
from .selection import DeliveryMethodCache, ProbeStrategy

__all__ = ["CorrespondentKnowledge", "MobilityEngine"]


@dataclass
class CorrespondentKnowledge:
    """What the mobile host knows about one correspondent.

    Tri-state fields: None = unknown, True/False = established fact
    (from configuration, from a DNS temporary-address lookup, from a
    received In-DE packet, or from probing).
    """

    decap_capable: Optional[bool] = None
    mobile_aware: Optional[bool] = None


class MobilityEngine(TransportObserver):
    """Decision-making brain of a mobile host."""

    def __init__(
        self,
        home_address: IPAddress,
        strategy: ProbeStrategy = ProbeStrategy.RULE_SEEDED,
        policy: Optional[MobilityPolicyTable] = None,
        heuristics: Optional[PortHeuristics] = None,
        retx_threshold: int = 2,
        upgrade_after: int = 4,
        privacy: bool = False,
        clock: Optional[Callable[[], float]] = None,
        failed_ttl: Optional[float] = None,
        forgive_after: Optional[int] = None,
    ):
        self.home_address = IPAddress(home_address)
        self.policy = policy if policy is not None else MobilityPolicyTable()
        self.cache = DeliveryMethodCache(
            strategy=strategy,
            policy=self.policy,
            upgrade_after=upgrade_after,
            clock=clock,
            failed_ttl=failed_ttl,
            forgive_after=forgive_after,
        )
        self.heuristics = heuristics if heuristics is not None else PortHeuristics()
        self.bind_intent = BindIntent(self.home_address)
        self.detector = RetransmissionDetector(
            threshold=retx_threshold, on_suspect=self._on_suspect
        )
        self.privacy = privacy
        self.knowledge: Dict[IPAddress, CorrespondentKnowledge] = {}
        # Host-provided callables (wired by MobileHost.attach_engine):
        self.physical_addresses: Callable[[], Set[IPAddress]] = lambda: set()
        self.care_of_address: Callable[[], Optional[IPAddress]] = lambda: None
        self.same_segment_test: Callable[[IPAddress], bool] = lambda dst: False
        self.at_home_test: Callable[[], bool] = lambda: True
        # Mobile IP control peers (the home agent): their traffic never
        # uses the mode ladder, so feedback about them is not tracked.
        self.control_addresses: Callable[[], Set[IPAddress]] = lambda: set()
        # Observers of mode changes (for logging/benchmarks).
        self.on_mode_change: Optional[Callable[[IPAddress, OutMode, str], None]] = None
        self.decisions_made = 0

    # ------------------------------------------------------------------
    # Knowledge management
    # ------------------------------------------------------------------
    def knowledge_for(self, dst: IPAddress) -> CorrespondentKnowledge:
        dst = IPAddress(dst)
        entry = self.knowledge.get(dst)
        if entry is None:
            entry = self.knowledge[dst] = CorrespondentKnowledge()
        return entry

    def learn(
        self,
        dst: IPAddress,
        decap_capable: Optional[bool] = None,
        mobile_aware: Optional[bool] = None,
    ) -> None:
        entry = self.knowledge_for(dst)
        if decap_capable is not None:
            entry.decap_capable = decap_capable
        if mobile_aware is not None:
            entry.mobile_aware = mobile_aware
            if mobile_aware:
                entry.decap_capable = True  # awareness implies decapsulation

    # ------------------------------------------------------------------
    # Decision 1 (§7.1.1): temporary or home address?
    # ------------------------------------------------------------------
    def select_source(
        self,
        remote_ip: IPAddress,
        remote_port: int,
        proto: IPProto,
        explicit_bind: Optional[IPAddress],
    ) -> IPAddress:
        """TransportStack source-selector hook."""
        self.decisions_made += 1
        care_of = self.care_of_address()
        if self.at_home_test() or care_of is None:
            # At home the host "functions like a normal non-mobile
            # Internet host" (§2): always the home address.
            return self.home_address
        choice = self.choose_address_kind(remote_ip, remote_port, proto, explicit_bind)
        if choice == AddressChoice.TEMPORARY:
            return care_of
        return self.home_address

    def choose_address_kind(
        self,
        remote_ip: IPAddress,
        remote_port: int,
        proto: IPProto,
        explicit_bind: Optional[IPAddress],
    ) -> str:
        # An explicit bind to a physical address wins over everything —
        # including privacy: binding is a deliberate act, and the Mobile
        # IP control software itself must register from the care-of
        # address ("it has no choice", §6.4).
        forced = self.bind_intent.interpret(explicit_bind, self.physical_addresses())
        if forced is not None:
            return forced
        if self.privacy:
            # Privacy users never reveal the care-of address (§4 Out-IE
            # motivation), so every conversation uses the home address.
            return AddressChoice.HOME
        if self.policy.lookup(IPAddress(remote_ip)) is Disposition.NO_MOBILE_IP:
            return AddressChoice.TEMPORARY
        return self.heuristics.choose(IPAddress(remote_ip), remote_port, proto)

    # ------------------------------------------------------------------
    # Decision 2 (§7.1.2): which home-address method?
    # ------------------------------------------------------------------
    def out_mode_for(self, dst: IPAddress) -> OutMode:
        """The mode for one home-address packet toward ``dst``."""
        dst = IPAddress(dst)
        if self.privacy:
            return OutMode.OUT_IE
        if self.same_segment_test(dst):
            # Row C: a one-hop peer needs no routers at all.
            return OutMode.OUT_DH
        mode = self.cache.mode_for(dst)
        mode = self._constrain(dst, mode)
        return mode

    def _constrain(self, dst: IPAddress, mode: OutMode) -> OutMode:
        """Skip modes known-impossible without burning real probes."""
        entry = self.knowledge_for(dst)
        while mode is OutMode.OUT_DE and entry.decap_capable is False:
            demoted = self.cache.on_suspect(dst, "known-not-decap-capable")
            mode = demoted if demoted is not None else OutMode.OUT_IE
        return mode

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _on_suspect(self, remote: IPAddress, reason: str) -> None:
        new_mode = self.cache.on_suspect(remote, reason)
        if new_mode is not None and self.on_mode_change is not None:
            self.on_mode_change(remote, new_mode, f"demoted: {reason}")

    # TransportObserver interface: feed the detector, and count original
    # receives as forward progress for the upgrade logic.
    def on_send(self, remote: IPAddress, retransmission: bool) -> None:
        if remote in self.control_addresses():
            return
        self.detector.on_send(remote, retransmission)

    def on_receive(self, remote: IPAddress, retransmission: bool) -> None:
        if remote in self.control_addresses():
            return
        self.detector.on_receive(remote, retransmission)
        if not retransmission:
            new_mode = self.cache.on_progress(remote)
            if new_mode is not None and self.on_mode_change is not None:
                self.on_mode_change(remote, new_mode, "tentative upgrade")

    def on_moved(self) -> None:
        """The host changed attachment: history no longer describes the
        current paths, so start over (and forget health counters)."""
        self.cache.reset_all()
        self.detector.reset_all()
