"""repro — reproduction of "Internet Mobility 4x4" (SIGCOMM 1996).

The package layers, bottom to top:

* :mod:`repro.netsim`   — packet-level network simulator (IPv4, links,
  ARP, routers, filtering, fragmentation, ICMP, tunneling).
* :mod:`repro.transport` — simplified UDP/TCP and a socket API with the
  bind-address semantics of the paper's §7.1.1.
* :mod:`repro.mobileip` — Mobile IP: home agent, mobile host, foreign
  agent, correspondent hosts, registration, DNS extension.
* :mod:`repro.core`     — the paper's contribution: the 4x4 grid of
  routing modes and the machinery that picks a cell per conversation.
* :mod:`repro.apps`     — application workloads (HTTP, telnet, DNS,
  NFS, multicast) used by examples and benchmarks.
* :mod:`repro.analysis` — metrics, canonical figure scenarios, and
  reporting helpers.
"""

__version__ = "1.0.0"

from . import analysis, apps, core, mobileip, netsim, transport  # noqa: F401

__all__ = [
    "analysis",
    "apps",
    "core",
    "mobileip",
    "netsim",
    "transport",
    "__version__",
]
