"""Chaos scenarios: the canonical stage under a scripted hostile network.

The recovery machinery of §7.1.2 — probe ladder, retransmission
feedback, registration retries — was designed for networks that fail.
This module runs the standard figure stage (:func:`build_chaos_stage`)
under a :class:`~repro.netsim.faults.FaultPlan` while a long-lived TCP
conversation between the mobile host and the correspondent keeps the
delivery-mode machinery honest: blackouts demote it down the ladder, a
home-agent crash forces registration backoff, and recovery lets the
failed-mode aging re-probe back up.

Everything is seed-deterministic: the fault plan schedules ordinary
engine events, so the same plan + seed reproduces the trace digest
byte-for-byte (:func:`repro.bench.golden.trace_digest`) — the property
the chaos determinism tests pin.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.selection import ProbeStrategy
from ..experiment.runner import Runner
from ..experiment.spec import ExperimentSpec
from ..mobileip.correspondent import Awareness
from ..netsim.faults import FaultKind, FaultPlan
from .scenarios import Scenario, build_scenario

__all__ = [
    "CHAOS_PORT",
    "ChaosReport",
    "build_chaos_stage",
    "chaos_spec",
    "demo_plan",
    "run_chaos",
]

CHAOS_PORT = 6100

# build_scenario kwarg names whose spec field is spelled differently.
_KWARG_TO_SPEC_FIELD = {"ch_awareness": "awareness", "scheme": "encap"}


def _spec_fields(overrides: Dict[str, Any]) -> Dict[str, Any]:
    """Translate ``build_scenario`` keyword overrides to spec fields."""
    fields: Dict[str, Any] = {}
    for key, value in overrides.items():
        if isinstance(value, enum.Enum):
            value = value.value
        fields[_KWARG_TO_SPEC_FIELD.get(key, key)] = value
    return fields


def chaos_spec(
    seed: int = 4242,
    duration: float = 260.0,
    strategy: ProbeStrategy = ProbeStrategy.CONSERVATIVE_FIRST,
    plan: Optional[FaultPlan] = None,
    arm_invariants: bool = False,
    **overrides: Any,
) -> ExperimentSpec:
    """The chaos world as an :class:`ExperimentSpec`.

    The visited domain is permissive (no egress source filtering) and
    the correspondent can decapsulate, so a conservative-first mobile
    host genuinely climbs Out-IE → Out-DE → Out-DH when the network is
    healthy — giving faults something to knock down.  ``overrides``
    take ``build_scenario`` keyword names for backward compatibility.
    """
    fields: Dict[str, Any] = dict(
        seed=seed,
        duration=duration,
        absolute=True,
        strategy=strategy.value,
        awareness=Awareness.DECAP_CAPABLE.value,
        visited_filtering=False,
        arm_invariants=arm_invariants,
        faults=plan.to_dict() if plan is not None else None,
    )
    fields.update(_spec_fields(overrides))
    return ExperimentSpec(**fields)


def build_chaos_stage(
    seed: int = 4242,
    strategy: ProbeStrategy = ProbeStrategy.CONSERVATIVE_FIRST,
    **overrides: Any,
) -> Scenario:
    """Build (only) the chaos stage — :func:`chaos_spec`'s world."""
    spec = chaos_spec(seed=seed, strategy=strategy, **overrides)
    return build_scenario(**spec.scenario_kwargs())


def demo_plan() -> FaultPlan:
    """A default chaos script over the canonical stage's names.

    A loss blackout on the visited LAN (demotes the ladder), a
    home-agent crash and later restart with its binding table flushed
    (forces registration backoff + re-registration), a boundary-router
    filter toggle (kills Out-DH mid-run, then relents), and an uplink
    flap.  Times leave room between acts for the recovery machinery to
    visibly climb back.
    """
    plan = FaultPlan()
    plan.add(20.0, FaultKind.LOSS_BURST, "visited-lan",
             duration=8.0, loss_rate=1.0)
    plan.add(60.0, FaultKind.NODE_DOWN, "ha")
    plan.add(100.0, FaultKind.AGENT_RESTART, "ha", flush_bindings=True)
    plan.add(150.0, FaultKind.FILTER_TOGGLE, "visited-gw",
             source_filtering=True, forbid_transit=True)
    plan.add(185.0, FaultKind.FILTER_TOGGLE, "visited-gw",
             source_filtering=False, forbid_transit=False)
    plan.add(220.0, FaultKind.LINK_FLAP, "uplink-visited", duration=5.0)
    return plan


@dataclass
class ChaosReport:
    """What one chaos run did and how the recovery machinery fared."""

    seed: int
    duration: float
    digest: str
    trace_entries: int
    faults: Dict[str, int] = field(default_factory=dict)
    messages_sent: int = 0
    echoes: int = 0
    reconnects: int = 0
    registration_attempts: int = 0
    registration_failures: int = 0
    registered: bool = False
    ha_restarts: int = 0
    ha_bindings: int = 0
    mode_changes: int = 0
    final_mode: Optional[str] = None
    forgiveness: int = 0
    invariants_armed: bool = False
    invariant_violations: int = 0
    # Path of the postmortem flight-recorder dump, when one was armed
    # and the run ended unhealthy (violation or unrecovered
    # registration); None otherwise.
    flightrec_path: Optional[str] = None
    # The observability report, when the run was observed (see the
    # CLI's global --obs-out flag); None otherwise.
    obs: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "duration": self.duration,
            "digest": self.digest,
            "trace_entries": self.trace_entries,
            "faults": dict(self.faults),
            "messages_sent": self.messages_sent,
            "echoes": self.echoes,
            "reconnects": self.reconnects,
            "registration_attempts": self.registration_attempts,
            "registration_failures": self.registration_failures,
            "registered": self.registered,
            "ha_restarts": self.ha_restarts,
            "ha_bindings": self.ha_bindings,
            "mode_changes": self.mode_changes,
            "final_mode": self.final_mode,
            "forgiveness": self.forgiveness,
            "invariants_armed": self.invariants_armed,
            "invariant_violations": self.invariant_violations,
            "flightrec_path": self.flightrec_path,
            "obs": self.obs,
        }

    def render(self) -> str:
        faults = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(self.faults.items())
        ) or "none"
        lines = [
            f"chaos run: seed={self.seed} duration={self.duration:.0f}s "
            f"trace={self.trace_entries} entries digest={self.digest[:16]}…",
            f"  faults applied      {faults}",
            f"  conversation        {self.echoes}/{self.messages_sent} echoed, "
            f"{self.reconnects} reconnects",
            f"  registration        {self.registration_attempts} attempts, "
            f"{self.registration_failures} give-ups, "
            f"registered={self.registered}",
            f"  home agent          {self.ha_restarts} restarts, "
            f"{self.ha_bindings} bindings at end",
            f"  delivery modes      {self.mode_changes} changes, "
            f"final={self.final_mode or '-'}, "
            f"forgiveness={self.forgiveness}",
        ]
        if self.invariants_armed:
            lines.append(
                f"  invariants          {self.invariant_violations} violations"
            )
        if self.flightrec_path:
            lines.append(
                f"  flight recorder     dumped to {self.flightrec_path}"
            )
        return "\n".join(lines)


def run_chaos(
    plan: Optional[FaultPlan] = None,
    seed: int = 4242,
    duration: float = 260.0,
    message_interval: float = 2.0,
    strategy: ProbeStrategy = ProbeStrategy.CONSERVATIVE_FIRST,
    reg_lifetime: Optional[float] = None,
    arm_invariants: bool = False,
    flightrec_path: Optional[str] = None,
    flightrec_limit: Optional[int] = None,
    **overrides: Any,
) -> ChaosReport:
    """Run one chaos scenario end to end and report.

    A paced TCP conversation (one message per ``message_interval``)
    runs from the mobile host to the correspondent for the whole
    ``duration``; when a fault kills the connection outright the host
    reconnects on the next tick.  ``plan`` defaults to
    :func:`demo_plan`; pass ``duration`` long enough for the plan's
    last act plus recovery.  ``reg_lifetime`` shortens the registration
    lifetime (and immediately renews at the new value), tightening the
    refresh cadence so a scripted home-agent outage lands on a live
    refresh instead of slipping between 300-second ones.

    ``flightrec_path`` arms the flight recorder for the run; beyond the
    runner's own dump-on-violation, a chaos run also dumps when the
    mobile host ends the run unregistered — the chaos-specific "the
    recovery machinery lost" outcome worth a postmortem.
    """
    if plan is None:
        plan = demo_plan()
    # The monitor is passive (no RNG draws, no state mutation), so
    # arming it never changes the digest of the run it watches.
    spec = chaos_spec(
        seed=seed,
        duration=duration,
        strategy=strategy,
        plan=plan,
        arm_invariants=arm_invariants,
        **overrides,
    )
    state = {"conn": None, "sent": 0, "echoes": 0, "reconnects": 0}

    def conversation(scenario: Scenario, _spec: ExperimentSpec):
        assert scenario.ch is not None and scenario.ch_ip is not None
        sim = scenario.sim
        if reg_lifetime is not None:
            scenario.mh.reg_lifetime = reg_lifetime
            if scenario.mh.registered:
                scenario.mh.register_with_home_agent(reg_lifetime)

        scenario.ch.stack.listen(
            CHAOS_PORT,
            lambda conn: setattr(
                conn, "on_data", lambda d, s: conn.send(20, ("ack", d))
            ),
        )

        def fresh_conn():
            conn = scenario.mh.stack.connect(scenario.ch_ip, CHAOS_PORT)
            conn.on_data = lambda d, s: state.__setitem__(
                "echoes", state["echoes"] + 1
            )
            state["conn"] = conn
            return conn

        def tick() -> None:
            if sim.now >= duration:
                return
            conn = state["conn"]
            if conn is None or not (
                conn.is_open or conn.state.value == "SYN_SENT"
            ):
                if conn is not None:
                    state["reconnects"] += 1
                fresh_conn()
            elif conn.is_open:
                state["sent"] += 1
                conn.send(50, state["sent"])
            sim.events.schedule(message_interval, tick)

        fresh_conn()
        sim.events.schedule(message_interval, tick)
        return None

    runner = Runner(
        flightrec_path=flightrec_path, flightrec_limit=flightrec_limit)
    result = runner.run(spec, driver=conversation)
    scenario = runner.scenario
    assert scenario is not None
    record = scenario.mh.engine.cache.records.get(scenario.ch_ip)
    flightrec_info = result.extras.get("flightrec")
    dump_path: Optional[str] = None
    if flightrec_info is not None:
        if flightrec_info["dumped"]:
            dump_path = flightrec_info["path"]
        elif not scenario.mh.registered:
            recorder = scenario.sim.flightrec
            assert recorder is not None and flightrec_path is not None
            dump_path = recorder.dump(
                flightrec_path, reason="unrecovered-registration")
    return ChaosReport(
        seed=seed,
        duration=duration,
        digest=result.digest,
        trace_entries=result.trace_entries,
        faults=dict(result.faults),
        messages_sent=state["sent"],
        echoes=state["echoes"],
        reconnects=state["reconnects"],
        registration_attempts=scenario.mh.registration_attempts,
        registration_failures=scenario.mh.registration_failures,
        registered=scenario.mh.registered,
        ha_restarts=scenario.ha.restarts,
        ha_bindings=len(scenario.ha.bindings),
        mode_changes=scenario.mh.engine.cache.total_mode_changes(),
        final_mode=record.current.value if record else None,
        forgiveness=record.forgiveness if record else 0,
        invariants_armed=result.invariants["armed"],
        invariant_violations=result.invariants.get("violation_count", 0),
        flightrec_path=dump_path,
        obs=result.obs,
    )
