"""Million-host worlds: build one, talk to it, prove it honest.

The population layer (:mod:`repro.netsim.population`) claims three
things: a pooled world *builds fast* (flyweight arrays, one timer-wheel
event), *stays small* (tens of bytes per host), and is *behaviorally
invisible* (a conversation with a promoted host is byte-identical to
the same conversation in a world where every host was a full node).
This module is the driver that measures all three on demand — the
``repro-mobility mega`` subcommand is a thin shell around it.

``run_mega`` builds a pooled world via the ordinary
:class:`~repro.experiment.runner.Runner` lifecycle, aims the canonical
UDP conversation at one pooled host (``TrafficProgram.target`` promotes
it at arm time), and reports build time, bytes/host, wheel throughput,
and the trace digest.  ``verify=True`` runs the same spec twice —
``mode="pooled"`` and ``mode="materialized"`` — and insists the digests
match, which is the paper-grade honesty check: aggregation must never
change what happens on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..experiment.runner import Runner, RunResult
from ..experiment.spec import ExperimentSpec, TrafficProgram

__all__ = ["MegaReport", "mega_spec", "run_mega", "DEFAULT_TARGET_INDEX"]

# The pooled host the canonical conversation promotes and talks to.
# Any index works (promotion is position-independent); a fixed default
# keeps digests comparable across invocations.
DEFAULT_TARGET_INDEX = 123


def mega_spec(
    hosts: int,
    domains: Optional[int] = None,
    mode: str = "pooled",
    seed: int = 1996,
    duration: float = 30.0,
    datagrams: int = 40,
    spacing: float = 0.25,
    target_index: int = DEFAULT_TARGET_INDEX,
    lifetime: Optional[float] = None,
    wheel_buckets: Optional[int] = None,
    observe: bool = False,
) -> ExperimentSpec:
    """The mega-world spec: a flyweight population plus the canonical
    conversation aimed at one pooled host."""
    if not 0 <= target_index < hosts:
        raise ValueError(
            f"target_index must be in [0, {hosts}), got {target_index}")
    population: Dict[str, Any] = {"hosts": hosts, "mode": mode}
    if domains is not None:
        population["domains"] = domains
    if lifetime is not None:
        population["lifetime"] = lifetime
    if wheel_buckets is not None:
        population["wheel_buckets"] = wheel_buckets
    traffic = None
    if datagrams > 0:
        traffic = TrafficProgram(
            port=7000,
            target=f"mega-h{target_index}",
            uniform={
                "datagrams": datagrams,
                "spacing": spacing,
                "size": 100,
                "direction": "both",
            },
        )
    return ExperimentSpec(
        seed=seed,
        label=f"mega-{mode}-{hosts}",
        duration=duration,
        population=population,
        traffic=traffic,
        observe=observe,
    )


@dataclass
class MegaReport:
    """One mega run, measured."""

    hosts: int
    mode: str
    digest: str
    trace_entries: int
    sim_time: float
    build_seconds: float
    total_seconds: float
    bytes_per_host: float
    population: Dict[str, Any]
    deliverability: Dict[str, Any]
    target: Optional[str]
    result: RunResult = field(repr=False)
    # Set when verify ran: the materialized twin's digest and the verdict.
    verify_digest: Optional[str] = None
    verified: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "hosts": self.hosts,
            "mode": self.mode,
            "digest": self.digest,
            "trace_entries": self.trace_entries,
            "sim_time": self.sim_time,
            "build_seconds": self.build_seconds,
            "total_seconds": self.total_seconds,
            "bytes_per_host": self.bytes_per_host,
            "population": self.population,
            "deliverability": {
                key: value for key, value in self.deliverability.items()
                if key in ("sent", "delivered", "dropped", "lost")
            },
            "target": self.target,
        }
        if self.verify_digest is not None:
            out["verify_digest"] = self.verify_digest
            out["verified"] = self.verified
        return out

    def render(self) -> str:
        population = self.population
        wheel = population.get("wheel", {})
        lines = [
            f"mega world: {self.hosts:,} hosts across "
            f"{population.get('domains', '?')} visited domains "
            f"(mode: {self.mode})",
            f"  build {self.build_seconds:.2f}s, total {self.total_seconds:.2f}s "
            f"wall for {self.sim_time:.1f}s simulated",
            f"  pool state {self.bytes_per_host:.1f} bytes/host "
            f"({population.get('state_bytes', 0):,} bytes, "
            f"{population.get('live', 0):,} live bindings)",
            f"  timer wheel: {wheel.get('buckets')} buckets, "
            f"{wheel.get('ticks', 0)} ticks, "
            f"{population.get('refreshes', 0):,} registration refreshes",
            f"  promotions: {population.get('promotions', 0)} "
            f"(target {self.target or '-'})",
        ]
        delivered = self.deliverability.get("delivered")
        sent = self.deliverability.get("sent")
        if sent:
            lines.append(f"  conversation: {delivered}/{sent} datagrams "
                         f"delivered")
        lines.append(f"  trace digest {self.digest[:16]}… "
                     f"({self.trace_entries} entries)")
        if self.verify_digest is not None:
            verdict = ("IDENTICAL — aggregation is invisible"
                       if self.verified else "MISMATCH")
            lines.append(f"  materialized twin {self.verify_digest[:16]}…: "
                         f"{verdict}")
        return "\n".join(lines)


def run_mega(
    hosts: int = 1_000_000,
    domains: Optional[int] = None,
    mode: str = "pooled",
    seed: int = 1996,
    duration: float = 30.0,
    datagrams: int = 40,
    spacing: float = 0.25,
    target_index: int = DEFAULT_TARGET_INDEX,
    lifetime: Optional[float] = None,
    wheel_buckets: Optional[int] = None,
    verify: bool = False,
    observe: bool = False,
    runner: Optional[Runner] = None,
) -> MegaReport:
    """Build and drive one mega world; optionally verify digest parity.

    ``verify=True`` additionally runs the materialized twin (every host
    a full node — expensive; keep ``hosts`` modest) and records whether
    the two digests match.  The runner's scenario stays live on the
    (possibly caller-supplied) ``runner`` for inspection.
    """
    runner = runner or Runner()
    spec = mega_spec(
        hosts=hosts, domains=domains, mode=mode, seed=seed,
        duration=duration, datagrams=datagrams, spacing=spacing,
        target_index=target_index, lifetime=lifetime,
        wheel_buckets=wheel_buckets, observe=observe,
    )
    result = runner.run(spec)
    scenario = runner.scenario
    assert scenario is not None and scenario.population is not None
    population_stats = scenario.population.stats()
    state_bytes = scenario.population.state_bytes()
    report = MegaReport(
        hosts=hosts,
        mode=mode,
        digest=result.digest,
        trace_entries=result.trace_entries,
        sim_time=result.sim_time,
        build_seconds=result.timings.get("build", 0.0),
        total_seconds=result.timings.get("total", 0.0),
        bytes_per_host=state_bytes / max(hosts, 1),
        population=population_stats,
        deliverability=result.deliverability,
        target=spec.traffic.target if spec.traffic is not None else None,
        result=result,
    )
    if verify:
        twin_mode = "materialized" if mode == "pooled" else "pooled"
        twin_spec = mega_spec(
            hosts=hosts, domains=domains, mode=twin_mode, seed=seed,
            duration=duration, datagrams=datagrams, spacing=spacing,
            target_index=target_index, lifetime=lifetime,
            wheel_buckets=wheel_buckets,
        )
        twin = Runner().run(twin_spec)
        report.verify_digest = twin.digest
        report.verified = (twin.digest == result.digest
                           and twin.trace_entries == result.trace_entries)
    return report
