"""Plain-text reporting: the tables the benchmarks print.

The paper has no numeric tables, so every benchmark prints its own
paper-style table — rows of (mode/scenario, measurement) — through
:class:`TextTable`, which keeps the output format identical across all
experiments (and greppable from ``bench_output.txt``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["TextTable", "render_kv"]


class TextTable:
    """A fixed-width text table with a title and column headers."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [f"== {self.title} =="]
        header = "  ".join(
            column.ljust(widths[index]) for index, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def ascii_series(
    title: str,
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """A horizontal bar chart in plain text — the benchmarks' 'figure'.

    Bars are scaled to the maximum value; each row shows label, bar,
    and the numeric value, so the *shape* of a sweep (Figure 4's rising
    stretch, §3.2's latency ordering) is visible in ``bench_output.txt``.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return f"== {title} ==\n(no data)"
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines = [f"== {title} =="]
    for label, value in zip(labels, values):
        bar = "#" * (int(round(value / peak * width)) if peak > 0 else 0)
        lines.append(
            f"  {str(label).rjust(label_width)} |{bar.ljust(width)}| "
            f"{value:.4g}{unit}"
        )
    return "\n".join(lines)


def render_kv(title: str, pairs: Iterable[tuple]) -> str:
    """A small key/value block for one-off results."""
    lines = [f"== {title} =="]
    for key, value in pairs:
        if isinstance(value, float):
            value = f"{value:.4g}"
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)
