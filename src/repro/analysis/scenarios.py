"""Canonical scenario builders for the paper's figures.

Every figure plays out on a variant of the same stage.  These builders
construct it once, consistently, for tests, examples, and benchmarks:

* ``home`` domain at one end of the backbone, holding the home agent
  (and the mobile host's permanent address 10.1.0.10);
* ``visited`` domain at the far end, where the mobile host goes;
* ``chdom``, the correspondent's domain, whose backbone attachment
  point is the *distance knob* for Figure 4's nearby-correspondent
  experiment (attach it near ``visited`` and the triangle gets bad);
* security posture knobs per domain (§3.1).

``Scenario`` bundles every actor so call sites stay readable.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.policy import MobilityPolicyTable
from ..core.selection import ProbeStrategy
from ..mobileip.correspondent import Awareness, CorrespondentHost
from ..mobileip.dns import DNSServer
from ..mobileip.foreign_agent import ForeignAgent
from ..mobileip.home_agent import HomeAgent
from ..mobileip.mobile_host import MobileHost
from ..netsim.addressing import IPAddress
from ..netsim.encap import EncapScheme
from ..netsim.simulator import Simulator
from ..netsim.topology import Domain, Internet

__all__ = ["Scenario", "build_scenario", "MH_HOME_ADDRESS", "SCENARIO_KNOBS"]

MH_HOME_ADDRESS = IPAddress("10.1.0.10")

HOME_PREFIX = "10.1.0.0/16"
VISITED_PREFIX = "10.2.0.0/16"
CH_PREFIX = "10.3.0.0/16"


@dataclass
class Scenario:
    """One assembled stage: simulator, topology, and actors."""

    sim: Simulator
    net: Internet
    home: Domain
    visited: Domain
    chdom: Optional[Domain]
    ha: HomeAgent
    ha_ip: IPAddress
    mh: MobileHost
    ch: Optional[CorrespondentHost]
    ch_ip: Optional[IPAddress]
    dns: Optional[DNSServer] = None
    dns_ip: Optional[IPAddress] = None
    fa: Optional[ForeignAgent] = None
    # The flyweight host population riding this world, when built with
    # the ``population`` knob (see repro.netsim.population).
    population: Optional[Any] = None

    def settle(self, duration: float = 5.0) -> None:
        """Run the simulator long enough for registrations to finish."""
        self.sim.run(until=self.sim.now + duration)

    def backbone_distance(self, a: str, b: str) -> int:
        return self.net.domain_distance(a, b)


def build_scenario(
    seed: int = 1996,
    backbone_size: int = 5,
    home_attach: int = 0,
    visited_attach: Optional[int] = None,
    ch_attach: int = 2,
    ch_awareness: Optional[Awareness] = Awareness.CONVENTIONAL,
    ch_in_visited_lan: bool = False,
    home_filtering: bool = True,
    visited_filtering: bool = True,
    ch_filtering: bool = False,
    strategy: ProbeStrategy = ProbeStrategy.RULE_SEEDED,
    policy: Optional[MobilityPolicyTable] = None,
    scheme: EncapScheme = EncapScheme.IPIP,
    privacy: bool = False,
    notify_correspondents: bool = False,
    with_dns: bool = False,
    with_foreign_agent: bool = False,
    mobile_starts_away: bool = True,
    backbone_latency: float = 0.010,
    trace_entries: bool = True,
    trace_aggregates: bool = True,
    auth_key: Optional[str] = None,
    fast_forward: bool = True,
    queue_capacity: Optional[int] = None,
    queue_capacities: Optional[Dict[str, int]] = None,
    link_bandwidths: Optional[Dict[str, float]] = None,
    population: Optional[Dict[str, Any]] = None,
) -> Scenario:
    """Build the standard stage.

    ``ch_awareness=None`` builds no correspondent at all (some
    experiments bring their own).  ``ch_in_visited_lan`` puts the
    correspondent on the mobile host's current segment (Row C).
    ``visited_attach`` defaults to the far end of the backbone.
    ``trace_entries``/``trace_aggregates`` pass through to
    :class:`repro.netsim.simulator.Simulator`; note that a fully dark
    run (``trace_aggregates=False``) makes ``analysis.snapshot``
    raise unless explicitly overridden.

    The link knobs shape contention (see
    :class:`repro.netsim.link.Segment`): ``queue_capacity`` puts every
    segment on the bounded-queue transmission-line model with that
    buffer depth (``None``, the default, keeps the historical
    no-contention links — digest-neutral); ``queue_capacities`` maps
    segment names to per-segment depths, overriding the global value;
    ``link_bandwidths`` maps segment names to bits/second overrides —
    the throttle that makes the canonical workload actually contend.
    Unknown segment names in either mapping raise ``ValueError``
    (segment names: ``{domain}-lan``, ``uplink-{domain}``,
    ``p2p-bb{i}-bb{j}``).  Applied before the mobile host first moves,
    so registration traffic crosses the shaped links too.

    ``population`` grows a flyweight host population onto the stage
    (see :func:`repro.netsim.population.install_population`): a dict
    with ``hosts`` (required), and optional ``domains``, ``mode``
    (``"pooled"``/``"materialized"``), ``lifetime``, ``wheel_buckets``.
    ``None`` — the default — builds exactly the historical world,
    digest-identical to before the knob existed.
    """
    sim = Simulator(
        seed=seed,
        trace_entries=trace_entries,
        trace_aggregates=trace_aggregates,
        fast_forward=fast_forward,
    )
    net = Internet(sim, backbone_size=backbone_size, backbone_latency=backbone_latency)
    if visited_attach is None:
        visited_attach = backbone_size - 1

    home = net.add_domain(
        "home", HOME_PREFIX, attach_at=home_attach, source_filtering=home_filtering
    )
    # A "permissive" domain disables both §3.1 policies: the egress
    # source check and the transit rule both kill foreign-source
    # packets leaving the site, so they travel together.
    visited = net.add_domain(
        "visited",
        VISITED_PREFIX,
        attach_at=visited_attach,
        source_filtering=visited_filtering,
        forbid_transit=visited_filtering,
    )
    chdom: Optional[Domain] = None
    if ch_awareness is not None and not ch_in_visited_lan:
        chdom = net.add_domain(
            "chdom", CH_PREFIX, attach_at=ch_attach,
            source_filtering=ch_filtering, forbid_transit=ch_filtering,
        )

    ha = HomeAgent(
        "ha",
        sim,
        home_network=home.prefix,
        scheme=scheme,
        notify_correspondents=notify_correspondents,
        auth_key=auth_key,
    )
    ha_ip = net.add_host("home", ha)

    mh = MobileHost(
        "mh",
        sim,
        home_address=MH_HOME_ADDRESS,
        home_network=home.prefix,
        home_agent_address=ha_ip,
        strategy=strategy,
        policy=policy,
        scheme=scheme,
        privacy=privacy,
        auth_key=auth_key,
    )
    mh.attach_home(net, "home")

    ch: Optional[CorrespondentHost] = None
    ch_ip: Optional[IPAddress] = None
    if ch_awareness is not None:
        ch = CorrespondentHost("ch", sim, awareness=ch_awareness, scheme=scheme)
        ch_ip = net.add_host(
            "visited" if ch_in_visited_lan else "chdom", ch
        )

    dns_server: Optional[DNSServer] = None
    dns_ip: Optional[IPAddress] = None
    if with_dns:
        dns_server = DNSServer("dns", sim)
        dns_ip = net.add_host("home", dns_server)
        dns_server.add_record("mh.home.example", MH_HOME_ADDRESS)

    fa: Optional[ForeignAgent] = None
    if with_foreign_agent:
        fa = ForeignAgent("fa", sim, scheme=scheme)
        net.add_host("visited", fa)

    population_layer = None
    if population is not None:
        from ..netsim.population import install_population

        population_layer = install_population(sim, net, population)

    _shape_links(sim, queue_capacity, queue_capacities, link_bandwidths)

    scenario = Scenario(
        sim=sim,
        net=net,
        home=home,
        visited=visited,
        chdom=chdom,
        ha=ha,
        ha_ip=ha_ip,
        mh=mh,
        ch=ch,
        ch_ip=ch_ip,
        dns=dns_server,
        dns_ip=dns_ip,
        fa=fa,
        population=population_layer,
    )
    if mobile_starts_away:
        if with_foreign_agent and fa is not None:
            mh.move_to_foreign_agent(net, "visited", fa)
        else:
            mh.move_to(net, "visited")
        scenario.settle()
    return scenario


def _shape_links(
    sim: Simulator,
    queue_capacity: Optional[int],
    queue_capacities: Optional[Dict[str, int]],
    link_bandwidths: Optional[Dict[str, float]],
) -> None:
    """Apply the per-segment contention knobs to a built topology."""
    for mapping, what in ((queue_capacities, "queue_capacities"),
                          (link_bandwidths, "link_bandwidths")):
        if mapping:
            unknown = sorted(set(mapping) - set(sim.segments))
            if unknown:
                raise ValueError(
                    f"{what} names unknown segment(s) {unknown} "
                    f"(have: {sorted(sim.segments)})")
    if link_bandwidths:
        for name, bandwidth in link_bandwidths.items():
            if bandwidth <= 0:
                raise ValueError(
                    f"link_bandwidths[{name!r}] must be positive, "
                    f"got {bandwidth}")
            sim.segments[name].bandwidth = bandwidth
    if queue_capacity is not None:
        for segment in sim.segments.values():
            segment.queue_capacity = queue_capacity
    if queue_capacities:
        for name, capacity in queue_capacities.items():
            sim.segments[name].set_queue_capacity(capacity)


# The builder's real keyword surface, derived from the signature so it
# cannot drift.  repro.experiment.spec validates against this: an
# ExperimentSpec may only produce kwargs named here.
SCENARIO_KNOBS = frozenset(
    inspect.signature(build_scenario).parameters)
