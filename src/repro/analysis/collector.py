"""Scenario-wide statistics collection.

Aggregates the counters scattered across a running scenario — per-node
send/receive totals, tunnel usage, home-agent work, per-link bytes,
drop reasons, engine decisions — into one structured snapshot that
benchmarks and examples can diff across phases of an experiment
("before the move" vs "after", "Mobile IP on" vs "off").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..mobileip.home_agent import HomeAgent
from ..mobileip.mobile_host import MobileHost
from .scenarios import Scenario

__all__ = ["ScenarioSnapshot", "snapshot", "diff"]


@dataclass(frozen=True)
class ScenarioSnapshot:
    """One moment's aggregate counters for a scenario."""

    time: float
    packets_sent: Dict[str, int]
    packets_received: Dict[str, int]
    tunneled_by_mh: int
    decapsulated_by_mh: int
    tunneled_by_ha: int
    reverse_forwarded_by_ha: int
    advisories_sent: int
    wide_area_bytes: int
    lan_bytes: int
    drops: Dict[str, int]
    engine_decisions: int
    mode_changes: int

    @property
    def total_sent(self) -> int:
        return sum(self.packets_sent.values())

    @property
    def mobile_ip_packets(self) -> int:
        """Packets that needed the Mobile IP machinery at all."""
        return (self.tunneled_by_mh + self.tunneled_by_ha
                + self.reverse_forwarded_by_ha)


def snapshot(scenario: Scenario) -> ScenarioSnapshot:
    """Capture the current counters of a scenario."""
    sim = scenario.sim
    wide, lan = 0, 0
    for name, count in sim.trace.bytes_by_link.items():
        if name.startswith("p2p") or name.startswith("uplink"):
            wide += count
        else:
            lan += count
    mh: MobileHost = scenario.mh
    ha: HomeAgent = scenario.ha
    return ScenarioSnapshot(
        time=sim.now,
        packets_sent={name: node.packets_sent
                      for name, node in sim.nodes.items()},
        packets_received={name: node.packets_received
                          for name, node in sim.nodes.items()},
        tunneled_by_mh=mh.tunnel.encapsulated_count,
        decapsulated_by_mh=mh.tunnel.decapsulated_count,
        tunneled_by_ha=ha.packets_tunneled,
        reverse_forwarded_by_ha=ha.packets_reverse_forwarded,
        advisories_sent=ha.advisories_sent,
        wide_area_bytes=wide,
        lan_bytes=lan,
        drops=dict(sim.trace.drops_by_reason),
        engine_decisions=mh.engine.decisions_made,
        mode_changes=mh.engine.cache.total_mode_changes(),
    )


def diff(before: ScenarioSnapshot, after: ScenarioSnapshot) -> ScenarioSnapshot:
    """Counter deltas between two snapshots of the same scenario."""
    if after.time < before.time:
        raise ValueError("snapshots out of order")
    return ScenarioSnapshot(
        time=after.time - before.time,
        packets_sent={
            name: after.packets_sent.get(name, 0) - count
            for name, count in before.packets_sent.items()
        } | {name: count for name, count in after.packets_sent.items()
             if name not in before.packets_sent},
        packets_received={
            name: after.packets_received.get(name, 0) - count
            for name, count in before.packets_received.items()
        } | {name: count for name, count in after.packets_received.items()
             if name not in before.packets_received},
        tunneled_by_mh=after.tunneled_by_mh - before.tunneled_by_mh,
        decapsulated_by_mh=after.decapsulated_by_mh - before.decapsulated_by_mh,
        tunneled_by_ha=after.tunneled_by_ha - before.tunneled_by_ha,
        reverse_forwarded_by_ha=(after.reverse_forwarded_by_ha
                                 - before.reverse_forwarded_by_ha),
        advisories_sent=after.advisories_sent - before.advisories_sent,
        wide_area_bytes=after.wide_area_bytes - before.wide_area_bytes,
        lan_bytes=after.lan_bytes - before.lan_bytes,
        drops={
            reason: after.drops.get(reason, 0) - count
            for reason, count in before.drops.items()
        } | {reason: count for reason, count in after.drops.items()
             if reason not in before.drops},
        engine_decisions=after.engine_decisions - before.engine_decisions,
        mode_changes=after.mode_changes - before.mode_changes,
    )
