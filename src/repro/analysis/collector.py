"""Scenario-wide statistics collection, backed by the metrics registry.

Aggregates the per-component counters of a running scenario — per-node
send/receive totals, tunnel usage, home-agent work, per-link bytes,
drop reasons, engine decisions — into one structured snapshot that
benchmarks and examples can diff across phases of an experiment
("before the move" vs "after", "Mobile IP on" vs "off").

Components register their counters into
:class:`repro.obs.metrics.MetricsRegistry` at construction (see
``Simulator.metrics``), so :func:`snapshot` queries the registry by
metric name and label instead of reaching into object attributes.  Any
new registered metric is automatically visible to registry consumers
without touching this module.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict

from .scenarios import Scenario

__all__ = ["ScenarioSnapshot", "DarkTraceError", "snapshot", "diff"]


class DarkTraceError(RuntimeError):
    """Raised when snapshotting a run whose tracing is fully disabled.

    With ``TraceLog(aggregates=False)`` the drop and per-link byte
    counters are never incremented; a snapshot would report zero drops
    and zero wide-area bytes, and a benchmark script could misread a
    dark run as a lossless one.
    """


@dataclass(frozen=True)
class ScenarioSnapshot:
    """One moment's aggregate counters for a scenario."""

    time: float
    packets_sent: Dict[str, int]
    packets_received: Dict[str, int]
    tunneled_by_mh: int
    decapsulated_by_mh: int
    tunneled_by_ha: int
    reverse_forwarded_by_ha: int
    advisories_sent: int
    wide_area_bytes: int
    lan_bytes: int
    drops: Dict[str, int]
    engine_decisions: int
    mode_changes: int

    @property
    def total_sent(self) -> int:
        return sum(self.packets_sent.values())

    @property
    def mobile_ip_packets(self) -> int:
        """Packets that needed the Mobile IP machinery at all."""
        return (self.tunneled_by_mh + self.tunneled_by_ha
                + self.reverse_forwarded_by_ha)


def snapshot(scenario: Scenario, strict: bool = True) -> ScenarioSnapshot:
    """Capture the current counters of a scenario from the registry.

    Raises :class:`DarkTraceError` when tracing is fully disabled
    (``aggregates=False``) — the drop/byte counters read 0 then, which
    is not the same as "nothing was dropped".  Pass ``strict=False`` to
    downgrade the error to a ``RuntimeWarning`` and snapshot anyway.
    """
    sim = scenario.sim
    if not sim.trace.aggregates:
        message = (
            "snapshot of a dark run: tracing is fully disabled "
            "(TraceLog aggregates=False), so drop and per-link byte "
            "counters read 0 regardless of what actually happened; "
            "build the scenario with trace_aggregates=True or pass "
            "strict=False to accept the partial snapshot"
        )
        if strict:
            raise DarkTraceError(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
    metrics = sim.metrics
    bytes_by_link = metrics.read_family("trace.bytes_by_link")
    wide = sum(count for link, count in bytes_by_link.items()
               if link.startswith(("p2p", "uplink")))
    lan = sum(bytes_by_link.values()) - wide
    mh_name, ha_name = scenario.mh.name, scenario.ha.name
    return ScenarioSnapshot(
        time=sim.now,
        packets_sent={labels["node"]: int(value) for labels, value
                      in metrics.series("node.packets_sent")},
        packets_received={labels["node"]: int(value) for labels, value
                          in metrics.series("node.packets_received")},
        tunneled_by_mh=int(metrics.value("tunnel.encapsulated", node=mh_name)),
        decapsulated_by_mh=int(metrics.value("tunnel.decapsulated", node=mh_name)),
        tunneled_by_ha=int(metrics.value("ha.packets_tunneled", node=ha_name)),
        reverse_forwarded_by_ha=int(
            metrics.value("ha.reverse_forwarded", node=ha_name)),
        advisories_sent=int(metrics.value("ha.advisories_sent", node=ha_name)),
        wide_area_bytes=int(wide),
        lan_bytes=int(lan),
        drops={reason: int(count) for reason, count
               in metrics.read_family("trace.drops_by_reason").items()},
        engine_decisions=int(metrics.value("mh.engine_decisions", node=mh_name)),
        mode_changes=int(metrics.value("mh.mode_changes", node=mh_name)),
    )


def diff(before: ScenarioSnapshot, after: ScenarioSnapshot) -> ScenarioSnapshot:
    """Counter deltas between two snapshots of the same scenario."""
    if after.time < before.time:
        raise ValueError("snapshots out of order")
    return ScenarioSnapshot(
        time=after.time - before.time,
        packets_sent={
            name: after.packets_sent.get(name, 0) - count
            for name, count in before.packets_sent.items()
        } | {name: count for name, count in after.packets_sent.items()
             if name not in before.packets_sent},
        packets_received={
            name: after.packets_received.get(name, 0) - count
            for name, count in before.packets_received.items()
        } | {name: count for name, count in after.packets_received.items()
             if name not in before.packets_received},
        tunneled_by_mh=after.tunneled_by_mh - before.tunneled_by_mh,
        decapsulated_by_mh=after.decapsulated_by_mh - before.decapsulated_by_mh,
        tunneled_by_ha=after.tunneled_by_ha - before.tunneled_by_ha,
        reverse_forwarded_by_ha=(after.reverse_forwarded_by_ha
                                 - before.reverse_forwarded_by_ha),
        advisories_sent=after.advisories_sent - before.advisories_sent,
        wide_area_bytes=after.wide_area_bytes - before.wide_area_bytes,
        lan_bytes=after.lan_bytes - before.lan_bytes,
        drops={
            reason: after.drops.get(reason, 0) - count
            for reason, count in before.drops.items()
        } | {reason: count for reason, count in after.drops.items()
             if reason not in before.drops},
        engine_decisions=after.engine_decisions - before.engine_decisions,
        mode_changes=after.mode_changes - before.mode_changes,
    )
