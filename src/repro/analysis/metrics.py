"""Metrics: the quantities the paper argues about.

§3 names the three optimization axes — deliverability, latency (path
length through the Internet), and packet size.  This module provides
the corresponding measurements over simulation traces:

* **path stretch** — the ratio of the path a packet actually took to
  the best direct path (Figure 4's triangle-routing penalty);
* **byte overhead** — encapsulation bytes relative to the unencapsulated
  packet (§3.3);
* **delivery ratio** — per §3.1's "correctly deliverable" requirement;
* distribution summaries used by every benchmark table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "Summary",
    "summarize",
    "path_stretch",
    "overhead_fraction",
    "delivery_ratio",
]


@dataclass(frozen=True)
class Summary:
    """Distribution summary for one measured series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    median: float
    p95: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.6g} min={self.minimum:.6g} "
            f"median={self.median:.6g} p95={self.p95:.6g} max={self.maximum:.6g}"
        )


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of a pre-sorted sequence."""
    if not ordered:
        raise ValueError("empty series")
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def summarize(values: Iterable[float]) -> Summary:
    """Summary statistics of a series (raises on an empty one)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty series")
    # Clamp derived statistics into [min, max]: float summation and the
    # interpolation in _percentile can otherwise land a ULP outside the
    # range (or underflow entirely for subnormal inputs).
    def clamp(value: float) -> float:
        return min(max(value, data[0]), data[-1])

    return Summary(
        count=len(data),
        mean=clamp(sum(data) / len(data)),
        minimum=data[0],
        maximum=data[-1],
        median=clamp(_percentile(data, 0.5)),
        p95=clamp(_percentile(data, 0.95)),
    )


def path_stretch(actual: float, direct: float) -> float:
    """How much longer the actual path is than the direct one.

    1.0 means optimal; Figure 4's nearby-correspondent scenario makes
    this large for In-IE and small for In-DE/In-DH.
    """
    if direct <= 0:
        raise ValueError("direct path measure must be positive")
    return actual / direct


def overhead_fraction(with_encap: int, without: int) -> float:
    """Fractional byte overhead of encapsulation (§3.3)."""
    if without <= 0:
        raise ValueError("baseline size must be positive")
    return (with_encap - without) / without


def delivery_ratio(delivered: int, sent: int) -> float:
    if sent <= 0:
        raise ValueError("nothing was sent")
    if delivered > sent:
        raise ValueError("delivered more than sent")
    return delivered / sent
