"""Movement models: itineraries for roaming mobile hosts.

The figures need only single moves, but soak tests and macro workloads
want hosts that keep moving.  Two models:

* :class:`Tour` — a fixed itinerary with per-stop dwell times
  (deterministic, good for assertions);
* :class:`RandomWaypoint` — the classic mobility model: pick a random
  next domain and a random dwell time, forever (seeded through the
  simulator's RNG, so runs reproduce).

Both drive :meth:`MobileHost.move_to`/:meth:`return_home` and record a
timestamped movement history for later assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..mobileip.mobile_host import MobileHost
from ..netsim.topology import Internet

__all__ = ["Tour", "RandomWaypoint"]

HOME_STOP = "home"


@dataclass
class _MoverBase:
    host: MobileHost
    net: Internet
    home_domain: str = HOME_STOP
    history: List[Tuple[float, str]] = field(default_factory=list)
    stopped: bool = False

    def _go(self, destination: str) -> None:
        if destination == self.home_domain:
            self.host.return_home(self.net, self.home_domain)
        else:
            self.host.move_to(self.net, destination)
        self.history.append((self.host.simulator.now, destination))

    def stop(self) -> None:
        """No further moves are scheduled after the current one."""
        self.stopped = True


class Tour(_MoverBase):
    """Visit a fixed itinerary of (domain, dwell-seconds) stops."""

    def __init__(
        self,
        host: MobileHost,
        net: Internet,
        itinerary: Sequence[Tuple[str, float]],
        home_domain: str = HOME_STOP,
    ):
        super().__init__(host=host, net=net, home_domain=home_domain)
        self.itinerary = list(itinerary)

    def start(self, initial_delay: float = 0.0) -> None:
        events = self.host.simulator.events

        def hop(index: int) -> None:
            if self.stopped or index >= len(self.itinerary):
                return
            destination, dwell = self.itinerary[index]
            self._go(destination)
            events.schedule(dwell, hop, index + 1)

        events.schedule(initial_delay, hop, 0)

    @property
    def completed(self) -> bool:
        return len(self.history) == len(self.itinerary)


class RandomWaypoint(_MoverBase):
    """Roam forever among a set of domains with random dwell times.

    Uses the simulator's seeded RNG exclusively, so a given seed gives
    the same walk.  The host never picks the domain it is already in.
    """

    def __init__(
        self,
        host: MobileHost,
        net: Internet,
        domains: Sequence[str],
        min_dwell: float = 5.0,
        max_dwell: float = 30.0,
        home_domain: str = HOME_STOP,
        include_home: bool = True,
    ):
        if not domains:
            raise ValueError("need at least one visitable domain")
        if min_dwell <= 0 or max_dwell < min_dwell:
            raise ValueError("need 0 < min_dwell <= max_dwell")
        super().__init__(host=host, net=net, home_domain=home_domain)
        self.domains = list(domains)
        if include_home and home_domain not in self.domains:
            self.domains.append(home_domain)
        self.min_dwell = min_dwell
        self.max_dwell = max_dwell

    def start(self, initial_delay: float = 0.0) -> None:
        sim = self.host.simulator

        def hop() -> None:
            if self.stopped:
                return
            here = self.host.current_domain
            choices = [d for d in self.domains if d != here] or self.domains
            destination = sim.rng.choice(choices)
            self._go(destination)
            dwell = sim.rng.uniform(self.min_dwell, self.max_dwell)
            sim.events.schedule(dwell, hop)

        sim.events.schedule(initial_delay, hop)
