"""Congestion cells: the In-* delivery modes under real link contention.

The 4x4 grid's incoming modes differ in *where* a correspondent's
datagram travels: In-IE bends every packet through the home domain and
back out (crossing the home uplink twice per datagram), In-DE tunnels
straight to the care-of address once the correspondent learns the
binding, and In-DH short-circuits to a link-layer send on the shared
LAN.  With PR 8's bounded-queue transmission lines those paths finally
*cost* differently: throttle ``uplink-home`` and the triangle route
queues, overflows, and pays serialization delay that the direct routes
avoid.

:func:`run_congestion` runs one cell per incoming mode over the same
seeded contention stage — home uplink throttled via ``link_bandwidths``
and bounded via ``queue_capacities`` — with invariants armed (every
queue-overflow loss must be a classified terminal fate) and the
engine sampler on (per-link queue depth and busy-line utilization).
Per-datagram latency is measured end to end at the sockets, so the
report ranks the modes by goodput and delay the way Figure 10 ranks
them by reachability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..experiment.runner import Runner
from ..experiment.spec import ExperimentSpec
from ..mobileip.correspondent import Awareness
from .scenarios import Scenario

__all__ = [
    "CONGESTION_PORT",
    "BOTTLENECK_SEGMENT",
    "CongestionCell",
    "CongestionReport",
    "congestion_spec",
    "run_congestion",
]

CONGESTION_PORT = 6200

# The contention point: every In-IE datagram crosses the home domain's
# uplink twice (inbound to the home agent, outbound inside the tunnel),
# while the direct modes stop using it as soon as the binding is known.
BOTTLENECK_SEGMENT = "uplink-home"
DEFAULT_BANDWIDTH = 1.5e6   # bits/s: a T1-class home uplink
DEFAULT_QUEUE = 8           # frames of buffer before tail drop

# (mode label, spec-field overrides).  All three cells share the same
# stage and traffic; only the correspondent's smarts differ.  The
# mobile-aware cells learn the binding from the home agent's care-of
# advisory raised while the first datagrams are still being tunneled.
_CELLS: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("In-IE", {"awareness": Awareness.CONVENTIONAL.value}),
    ("In-DE", {"awareness": Awareness.MOBILE_AWARE.value,
               "notify_correspondents": True}),
    ("In-DH", {"awareness": Awareness.MOBILE_AWARE.value,
               "notify_correspondents": True,
               "ch_in_visited_lan": True}),
)


def congestion_spec(
    mode: str = "In-IE",
    seed: int = 1402,
    duration: float = 20.0,
    bandwidth: float = DEFAULT_BANDWIDTH,
    queue: int = DEFAULT_QUEUE,
    observe: bool = True,
) -> ExperimentSpec:
    """One congestion cell as an :class:`ExperimentSpec`.

    The traffic itself is installed by :func:`run_congestion`'s driver
    (latency is measured at the sockets), so the spec carries only the
    world: the throttled, bounded home uplink and the correspondent
    posture for ``mode``.
    """
    overrides = dict(_CELLS)[mode]  # KeyError on an unknown mode
    return ExperimentSpec(
        seed=seed,
        duration=duration,
        label=f"congestion-{mode}",
        link_bandwidths={BOTTLENECK_SEGMENT: bandwidth},
        queue_capacities={BOTTLENECK_SEGMENT: queue},
        arm_invariants=True,
        observe=observe,
        **overrides,
    )


@dataclass
class CongestionCell:
    """One In-* mode's fate under the shared contention stage."""

    mode: str
    sent: int
    received: int
    latency_mean: Optional[float]
    latency_p50: Optional[float]
    latency_p99: Optional[float]
    queue_dropped: int
    peak_queue_depth: int
    bottleneck_busy: float       # busy-line seconds at the bottleneck
    losses_by_reason: Dict[str, int]
    invariant_violations: int
    digest: str

    @property
    def goodput(self) -> float:
        return self.received / self.sent if self.sent else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "sent": self.sent,
            "received": self.received,
            "goodput": self.goodput,
            "latency_mean": self.latency_mean,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "queue_dropped": self.queue_dropped,
            "peak_queue_depth": self.peak_queue_depth,
            "bottleneck_busy": self.bottleneck_busy,
            "losses_by_reason": dict(self.losses_by_reason),
            "invariant_violations": self.invariant_violations,
            "digest": self.digest,
        }


@dataclass
class CongestionReport:
    """All cells, ranked: highest goodput first, then lowest latency."""

    seed: int
    bandwidth: float
    queue: int
    datagrams: int
    cells: List[CongestionCell] = field(default_factory=list)

    def ranked(self) -> List[CongestionCell]:
        return sorted(
            self.cells,
            key=lambda c: (-c.goodput, c.latency_mean
                           if c.latency_mean is not None else float("inf")),
        )

    def cell(self, mode: str) -> CongestionCell:
        for cell in self.cells:
            if cell.mode == mode:
                return cell
        raise KeyError(mode)

    @property
    def violation_count(self) -> int:
        return sum(cell.invariant_violations for cell in self.cells)

    @property
    def total_queue_dropped(self) -> int:
        return sum(cell.queue_dropped for cell in self.cells)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "bandwidth": self.bandwidth,
            "queue": self.queue,
            "datagrams": self.datagrams,
            "cells": [cell.to_dict() for cell in self.cells],
            "ranking": [cell.mode for cell in self.ranked()],
        }

    def render(self) -> str:
        lines = [
            f"congestion stage: seed={self.seed} "
            f"bottleneck={BOTTLENECK_SEGMENT} "
            f"@ {self.bandwidth / 1e6:g} Mbit/s, queue={self.queue} frames, "
            f"{self.datagrams} datagrams per cell",
            f"{'mode':<7} {'goodput':>8} {'recv/sent':>11} "
            f"{'mean':>9} {'p50':>9} {'p99':>9} "
            f"{'qdrop':>6} {'qpeak':>6}",
        ]
        for cell in self.ranked():
            def ms(value: Optional[float]) -> str:
                return f"{value * 1e3:.2f}ms" if value is not None else "-"
            lines.append(
                f"{cell.mode:<7} {cell.goodput:>7.1%} "
                f"{cell.received:>5}/{cell.sent:<5} "
                f"{ms(cell.latency_mean):>9} {ms(cell.latency_p50):>9} "
                f"{ms(cell.latency_p99):>9} "
                f"{cell.queue_dropped:>6} {cell.peak_queue_depth:>6}")
        ranked = self.ranked()
        lines.append(
            "ranking: " + " > ".join(cell.mode for cell in ranked))
        if self.violation_count:
            lines.append(
                f"INVARIANT VIOLATIONS: {self.violation_count}")
        return "\n".join(lines)


def _percentile(ordered: List[float], fraction: float) -> float:
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run_congestion(
    seed: int = 1402,
    datagrams: int = 400,
    spacing: float = 0.002,
    size: int = 1000,
    bandwidth: float = DEFAULT_BANDWIDTH,
    queue: int = DEFAULT_QUEUE,
    duration: float = 20.0,
    observe: bool = True,
) -> CongestionReport:
    """Run every In-* congestion cell and rank the modes.

    Each cell offers the same paced CH→MH datagram train (``datagrams``
    sends of ``size`` bytes every ``spacing`` seconds — deliberately
    more than the throttled uplink can carry) and measures per-datagram
    latency at the receiving socket via indexed payloads.  Every run
    arms the invariant monitor, so a queue-overflow loss that escaped
    terminal-fate classification fails loudly here.
    """
    report = CongestionReport(
        seed=seed, bandwidth=bandwidth, queue=queue, datagrams=datagrams)
    for mode, _overrides in _CELLS:
        spec = congestion_spec(
            mode=mode, seed=seed, duration=duration,
            bandwidth=bandwidth, queue=queue, observe=observe)
        sent_at: Dict[int, float] = {}
        latencies: List[float] = []

        def driver(scenario: Scenario, _spec: ExperimentSpec):
            assert scenario.ch is not None
            sim = scenario.sim
            mh_sock = scenario.mh.stack.udp_socket(CONGESTION_PORT)

            def on_datagram(data, _size, _src_ip, _src_port) -> None:
                tag, index = data
                assert tag == "cg"
                latencies.append(sim.now - sent_at[index])

            mh_sock.on_receive(on_datagram)
            ch_sock = scenario.ch.stack.udp_socket()

            def send(index: int) -> None:
                sent_at[index] = sim.now
                ch_sock.sendto(("cg", index), size,
                               scenario.mh.home_address, CONGESTION_PORT)

            for index in range(datagrams):
                sim.events.schedule(
                    index * spacing, lambda i=index: send(i),
                    label=f"congestion-{index}")
            return None

        runner = Runner()
        result = runner.run(spec, driver=driver)
        scenario = runner.scenario
        assert scenario is not None
        bottleneck = scenario.sim.segments[BOTTLENECK_SEGMENT]
        peak_depth = 0
        if result.obs is not None:
            peak_depth = (result.obs["engine"]["summary"]
                          .get("peak_queue_depth", {})
                          .get(BOTTLENECK_SEGMENT, 0))
        ordered = sorted(latencies)
        report.cells.append(CongestionCell(
            mode=mode,
            sent=len(sent_at),
            received=len(latencies),
            latency_mean=(sum(ordered) / len(ordered)) if ordered else None,
            latency_p50=_percentile(ordered, 0.50) if ordered else None,
            latency_p99=_percentile(ordered, 0.99) if ordered else None,
            queue_dropped=bottleneck.queue_dropped,
            peak_queue_depth=peak_depth,
            bottleneck_busy=bottleneck.busy_seconds,
            losses_by_reason=dict(
                result.deliverability.get("losses_by_reason", {})),
            invariant_violations=result.invariants.get("violation_count", 0),
            digest=result.digest,
        ))
    return report
