"""Measurement, canonical scenarios, and reporting.

* :mod:`repro.analysis.metrics`   — path stretch, overhead, delivery
  ratio, distribution summaries.
* :mod:`repro.analysis.scenarios` — the standard stage every figure
  plays out on.
* :mod:`repro.analysis.reporting` — plain-text tables for benchmarks.
"""

from .chaos import CHAOS_PORT, ChaosReport, build_chaos_stage, demo_plan, run_chaos
from .collector import DarkTraceError, ScenarioSnapshot, diff, snapshot
from .movement import RandomWaypoint, Tour
from .metrics import Summary, delivery_ratio, overhead_fraction, path_stretch, summarize
from .reporting import TextTable, ascii_series, render_kv
from .scenarios import MH_HOME_ADDRESS, Scenario, build_scenario

__all__ = [
    "CHAOS_PORT",
    "ChaosReport",
    "build_chaos_stage",
    "demo_plan",
    "run_chaos",
    "DarkTraceError",
    "ScenarioSnapshot",
    "diff",
    "snapshot",
    "RandomWaypoint",
    "Tour",
    "Summary",
    "delivery_ratio",
    "overhead_fraction",
    "path_stretch",
    "summarize",
    "TextTable",
    "ascii_series",
    "render_kv",
    "MH_HOME_ADDRESS",
    "Scenario",
    "build_scenario",
]
