"""Property-based fuzzing with shrinking.

One :class:`FuzzCase` is a fully-serializable description of a run:
a seed, a topology shape, a traffic mix, a fault schedule, and an
adversary schedule.  :func:`run_case` converts it to an
:class:`~repro.experiment.spec.ExperimentSpec` (``FuzzCase.to_spec``)
and hands it to the shared :class:`~repro.experiment.runner.Runner`,
which builds the stage, arms the
:class:`~repro.verify.invariants.InvariantMonitor`, plays everything
out, and reports any invariant violations.  The spec is also embedded
in repro files, so a shrunken failure replays outside the fuzzer with
``repro-mobility sweep --spec repro.json``.

:func:`run_fuzz` generates cases seed-deterministically (the same
``--seed`` explores the same cases in the same order) and, on the
first violating case, **shrinks** it: greedily dropping fault events,
adversary events, and traffic, and cutting topology and duration, as
long as the violation reproduces.  The minimal case is written to disk
as JSON so ``repro-mobility fuzz --repro file.json`` (or a regression
test) can replay it exactly.

Everything here is deterministic by construction: case generation uses
its own :class:`random.Random`, and a run's behaviour depends only on
the case's fields — never on wall clocks or global state.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..experiment.cache import ResultCache
from ..experiment.runner import Runner
from ..experiment.spec import ExperimentSpec, TrafficProgram
from ..mobileip.correspondent import Awareness
from ..netsim.faults import FaultPlan

__all__ = [
    "FuzzCase",
    "CaseResult",
    "FuzzReport",
    "generate_case",
    "run_case",
    "shrink_case",
    "run_fuzz",
]

AUTH_KEY = "fuzz-shared-secret"
SETTLE_MARGIN = 5.0        # run past the nominal duration for stragglers
TRAFFIC_PORT = 6200
_TRAFFIC_SIZES = (50, 200, 600, 1400, 2500)
_FAULT_MENU = ("link-flap", "loss-burst", "filter-toggle",
               "agent-restart", "node-outage")
_ADVERSARY_MENU = ("spoof", "replay", "bogus", "truncated")


@dataclass
class FuzzCase:
    """One serializable fuzz input."""

    seed: int
    duration: float = 40.0
    backbone_size: int = 4
    ch_attach: int = 1
    visited_filtering: bool = False
    auth: bool = False
    traffic: List[Dict[str, Any]] = field(default_factory=list)
    faults: List[Dict[str, Any]] = field(default_factory=list)
    adversary: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def event_count(self) -> int:
        return len(self.traffic) + len(self.faults) + len(self.adversary)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        return cls.from_dict(json.loads(text))

    def to_spec(
        self, max_tunnel_depth: Optional[int] = None
    ) -> ExperimentSpec:
        """This case's world as an :class:`ExperimentSpec`.

        The spec is the replayable form: it lands inside the repro
        JSON so ``repro-mobility sweep --spec repro.json`` re-runs the
        exact world (invariants armed) outside the fuzzer.
        """
        faults = None
        if self.faults:
            plan = FaultPlan()
            for event in self.faults:
                plan.add(event["time"], event["kind"], event["target"],
                         **event.get("params", {}))
            faults = plan.to_dict()
        return ExperimentSpec(
            label=f"fuzz-case-{self.seed}",
            seed=self.seed,
            duration=self.duration,
            settle_margin=SETTLE_MARGIN,
            backbone_size=self.backbone_size,
            ch_attach=min(self.ch_attach, self.backbone_size - 1),
            awareness=Awareness.DECAP_CAPABLE.value,
            visited_filtering=self.visited_filtering,
            auth_key=AUTH_KEY if self.auth else None,
            traffic=TrafficProgram(
                port=TRAFFIC_PORT,
                ch_bind=True,
                payload_style="indexed",
                events=list(self.traffic),
            ),
            faults=faults,
            adversary=list(self.adversary),
            arm_invariants=True,
            max_tunnel_depth=max_tunnel_depth,
        )


@dataclass
class CaseResult:
    """What one case's run produced."""

    violations: List[Dict[str, Any]]
    checks: Dict[str, int]
    trace_entries: int
    # The run's fast-forward counters (``extras["fast_forward"]``), so
    # a campaign can aggregate engine efficacy; empty if absent.
    fast_forward: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violated_invariants(self) -> List[str]:
        return sorted({v["invariant"] for v in self.violations})


def generate_case(seed: int) -> FuzzCase:
    """Derive one random case from a seed, deterministically."""
    rng = random.Random(seed)
    duration = round(rng.uniform(30.0, 80.0), 1)
    backbone_size = rng.randint(3, 6)
    case = FuzzCase(
        seed=seed,
        duration=duration,
        backbone_size=backbone_size,
        ch_attach=rng.randrange(backbone_size),
        visited_filtering=rng.random() < 0.25,
        auth=rng.random() < 0.5,
    )
    for _ in range(rng.randint(5, 20)):
        case.traffic.append({
            "at": round(rng.uniform(1.0, duration), 3),
            "direction": rng.choice(("mh->ch", "ch->mh")),
            "size": rng.choice(_TRAFFIC_SIZES),
        })
    for _ in range(rng.randint(0, 5)):
        case.faults.extend(_random_fault(rng, duration))
    for _ in range(rng.randint(0, 4)):
        case.adversary.append({
            "at": round(rng.uniform(2.0, duration), 3),
            "kind": rng.choice(_ADVERSARY_MENU),
        })
    case.traffic.sort(key=lambda event: event["at"])
    case.faults.sort(key=lambda event: event["time"])
    case.adversary.sort(key=lambda event: event["at"])
    return case


def _random_fault(rng: random.Random, duration: float) -> List[Dict[str, Any]]:
    kind = rng.choice(_FAULT_MENU)
    at = round(rng.uniform(2.0, max(3.0, duration - 5.0)), 3)
    if kind == "link-flap":
        target = rng.choice(("uplink-visited", "uplink-home"))
        return [{"time": at, "kind": "link-flap", "target": target,
                 "params": {"duration": round(rng.uniform(1.0, 8.0), 3)}}]
    if kind == "loss-burst":
        target = rng.choice(("visited-lan", "home-lan"))
        return [{"time": at, "kind": "loss-burst", "target": target,
                 "params": {"duration": round(rng.uniform(1.0, 6.0), 3),
                            "loss_rate": round(rng.uniform(0.3, 1.0), 3)}}]
    if kind == "filter-toggle":
        tighten = rng.random() < 0.5
        return [{"time": at, "kind": "filter-toggle", "target": "visited-gw",
                 "params": {"source_filtering": tighten,
                            "forbid_transit": tighten}}]
    if kind == "agent-restart":
        return [{"time": at, "kind": "agent-restart", "target": "ha",
                 "params": {"flush_bindings": rng.random() < 0.7}}]
    # node-outage: a down always paired with a later up, so the run can
    # end in a recoverable state.
    target = rng.choice(("ha", "mh"))
    up_at = round(at + rng.uniform(2.0, 10.0), 3)
    return [
        {"time": at, "kind": "node-down", "target": target, "params": {}},
        {"time": up_at, "kind": "node-up", "target": target, "params": {}},
    ]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_case(
    case: FuzzCase,
    max_tunnel_depth: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    flightrec_path: Optional[str] = None,
) -> CaseResult:
    """Build the case's world, run it with invariants armed, report.

    One line of real work: the case converts to an
    :class:`ExperimentSpec` and the shared :class:`Runner` owns the
    build → arm → drive → collect lifecycle (traffic, fault plan, and
    adversary schedule included).  With a ``cache``, the spec digest is
    looked up first — the shrinker revisits near-identical worlds, and
    a hit skips the whole run.  ``flightrec_path`` arms the flight
    recorder and forces a live run (a cache hit has no ring to dump).
    """
    spec = case.to_spec(max_tunnel_depth=max_tunnel_depth)
    if flightrec_path is not None:
        cache = None
    result = cache.lookup(spec) if cache is not None else None
    if result is None:
        result = Runner(flightrec_path=flightrec_path).run(spec)
        if cache is not None:
            cache.store(spec, result)
    return CaseResult(
        violations=list(result.invariants["violations"]),
        checks=dict(result.invariants["checks"]),
        trace_entries=result.trace_entries,
        fast_forward=dict(result.extras.get("fast_forward") or {}),
    )


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _candidates(case: FuzzCase) -> List[FuzzCase]:
    """Smaller variants, most-aggressive first."""
    variants: List[FuzzCase] = []

    def clone(**changes: Any) -> FuzzCase:
        data = case.to_dict()
        data.update(changes)
        return FuzzCase.from_dict(data)

    if len(case.traffic) > 1:
        half = len(case.traffic) // 2
        variants.append(clone(traffic=case.traffic[:half]))
        variants.append(clone(traffic=case.traffic[half:]))
    for index in range(len(case.faults)):
        variants.append(clone(
            faults=case.faults[:index] + case.faults[index + 1:]))
    for index in range(len(case.adversary)):
        variants.append(clone(
            adversary=case.adversary[:index] + case.adversary[index + 1:]))
    if len(case.traffic) <= 4:
        for index in range(len(case.traffic)):
            variants.append(clone(
                traffic=case.traffic[:index] + case.traffic[index + 1:]))
    if case.backbone_size > 2:
        variants.append(clone(backbone_size=case.backbone_size - 1,
                              ch_attach=min(case.ch_attach,
                                            case.backbone_size - 2)))
    last_event = max(
        [e["at"] for e in case.traffic]
        + [e["time"] for e in case.faults]
        + [e["at"] for e in case.adversary]
        + [0.0]
    )
    if case.duration > last_event + SETTLE_MARGIN + 1.0:
        variants.append(clone(duration=round(last_event + SETTLE_MARGIN, 1)))
    return variants


def shrink_case(
    case: FuzzCase,
    target_invariant: str,
    max_runs: int = 200,
    max_tunnel_depth: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> FuzzCase:
    """Greedy shrink to a fixpoint, preserving the target violation.

    The greedy loop regenerates candidate lists after every accepted
    shrink, so the same candidate world often comes up again; with a
    ``cache`` those repeats are digest hits instead of full runs.
    """
    current = case
    runs = 0
    improved = True
    while improved and runs < max_runs:
        improved = False
        for candidate in _candidates(current):
            runs += 1
            if runs >= max_runs:
                break
            result = run_case(
                candidate, max_tunnel_depth=max_tunnel_depth, cache=cache)
            if target_invariant in result.violated_invariants():
                current = candidate
                improved = True
                break
    return current


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------
_FF_TOTAL_KEYS = ("engaged_runs", "replayed", "captured", "fallbacks",
                  "world_changes")


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    seed: int
    iterations: int
    cases_run: int = 0
    failed: bool = False
    failing_case: Optional[Dict[str, Any]] = None
    shrunk_case: Optional[Dict[str, Any]] = None
    violations: List[Dict[str, Any]] = field(default_factory=list)
    repro_path: Optional[str] = None
    flightrec_path: Optional[str] = None
    # Campaign-total fast-forward counters, summed across cases.
    fast_forward: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "cases_run": self.cases_run,
            "failed": self.failed,
            "failing_case": self.failing_case,
            "shrunk_case": self.shrunk_case,
            "violations": self.violations,
            "repro_path": self.repro_path,
            "flightrec_path": self.flightrec_path,
            "fast_forward": dict(self.fast_forward),
        }

    def render(self) -> str:
        if not self.failed:
            return (f"fuzz: {self.cases_run}/{self.iterations} cases, "
                    f"seed={self.seed}, no invariant violations")
        lines = [
            f"fuzz: FAILED after {self.cases_run} cases (seed={self.seed})",
        ]
        for violation in self.violations[:5]:
            lines.append(
                f"  [{violation['invariant']}] t={violation['time']:.3f} "
                f"node={violation['node']} trace={violation['trace_id']}: "
                f"{violation['message']}"
            )
        if self.shrunk_case is not None:
            shrunk = FuzzCase.from_dict(self.shrunk_case)
            lines.append(
                f"  shrunk to {shrunk.event_count} events "
                f"(duration {shrunk.duration:.0f}s, "
                f"backbone {shrunk.backbone_size})"
            )
        if self.repro_path:
            lines.append(f"  repro written to {self.repro_path}")
        if self.flightrec_path:
            lines.append(
                f"  flight recorder dumped to {self.flightrec_path}")
        return "\n".join(lines)


def run_fuzz(
    iterations: int = 200,
    seed: int = 4,
    out: Optional[str] = None,
    shrink: bool = True,
    max_tunnel_depth: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    flightrec_path: Optional[str] = None,
) -> FuzzReport:
    """Run the fuzz loop; on the first violation, shrink and report.

    ``out`` is where the shrunken repro JSON lands (only written on
    failure).  Stops at the first failing case — fuzzing is a
    detector, not a census.

    ``flightrec_path`` keeps the campaign and shrinker unperturbed
    (the ring would defeat the shrinker's cache) and instead replays
    the **shrunken** case once with the flight recorder armed, so the
    dump on disk matches the repro JSON next to it.
    """
    master = random.Random(seed)
    report = FuzzReport(seed=seed, iterations=iterations)
    report.fast_forward = {key: 0 for key in _FF_TOTAL_KEYS}
    for _ in range(iterations):
        case_seed = master.randrange(1 << 31)
        case = generate_case(case_seed)
        result = run_case(case, max_tunnel_depth=max_tunnel_depth, cache=cache)
        report.cases_run += 1
        for key in _FF_TOTAL_KEYS:
            report.fast_forward[key] += result.fast_forward.get(key, 0)
        if result.ok:
            continue
        report.failed = True
        report.failing_case = case.to_dict()
        report.violations = result.violations
        if shrink:
            target = result.violations[0]["invariant"]
            shrunk = shrink_case(
                case, target, max_tunnel_depth=max_tunnel_depth, cache=cache)
            report.shrunk_case = shrunk.to_dict()
        else:
            report.shrunk_case = case.to_dict()
        if out is not None:
            shrunk = FuzzCase.from_dict(report.shrunk_case)
            with open(out, "w") as handle:
                json.dump(
                    {
                        "case": report.shrunk_case,
                        # The replayable form: `repro-mobility sweep
                        # --spec repro.json` re-runs this exact world
                        # through the generic experiment runner.
                        "spec": shrunk.to_spec(
                            max_tunnel_depth=max_tunnel_depth).to_dict(),
                        "violations": report.violations,
                        "original_case": report.failing_case,
                    },
                    handle, indent=2, sort_keys=True,
                )
                handle.write("\n")
            report.repro_path = out
        if flightrec_path is not None:
            # One extra run of the minimal world, ring armed: the
            # violation re-fires (shrinking preserved it) and the
            # Runner dumps the last moments to flightrec_path.
            shrunk = FuzzCase.from_dict(report.shrunk_case)
            replay = run_case(
                shrunk, max_tunnel_depth=max_tunnel_depth,
                flightrec_path=flightrec_path)
            if not replay.ok:
                report.flightrec_path = flightrec_path
        break
    return report


def replay_repro(path: str) -> CaseResult:
    """Re-run a repro file written by :func:`run_fuzz`."""
    with open(path) as handle:
        payload = json.load(handle)
    case = FuzzCase.from_dict(payload["case"])
    return run_case(case)
