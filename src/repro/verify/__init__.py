"""Runtime verification: invariants, adversaries, and fuzzing.

Three layers that together answer "is the simulation *right*, not just
running":

* :mod:`repro.verify.invariants` — an :class:`InvariantMonitor` riding
  the trace stream, checking properties that must hold in any correct
  execution (no forwarding loops, TTL monotonicity, fragment byte
  conservation, bounded tunnel nesting, guaranteed termination,
  binding consistency, filter soundness);
* :mod:`repro.verify.adversary` — a malicious node that spoofs and
  replays registrations and malforms tunnel packets, for hardening
  tests and fuzz schedules;
* :mod:`repro.verify.fuzz` — a seed-deterministic property-based
  harness that generates random topologies × traffic × faults ×
  adversaries, arms the monitor, and shrinks any violating case to a
  minimal JSON reproduction.
"""

from .adversary import Adversary
from .invariants import INVARIANTS, InvariantMonitor, Violation

__all__ = ["Adversary", "INVARIANTS", "InvariantMonitor", "Violation"]
