"""An adversarial node for hardening runs.

The paper's threat discussion (§3.1) is about *routers* distrusting
topologically-incorrect packets; the registration protocol itself is
described over an open UDP port.  This module supplies the attacker
that port invites — the reason RFC 2002 made its authentication
extension mandatory:

* **spoofed registrations** — claim someone else's home address and
  bind it to an address the attacker controls (traffic hijack);
* **replayed registrations** — re-send a captured legitimate request
  verbatim, authenticator and all (rebind the victim to a stale
  care-of address);
* **bogus encapsulation** — tunnel-protocol packets whose payload is
  not a packet at all, probing every decapsulating endpoint;
* **truncated encapsulation** — minimal-encapsulation packets with the
  forwarding header torn off.

The :class:`Adversary` is an ordinary :class:`~repro.netsim.node.Node`
attached anywhere in the topology; everything it sends travels — and
is filtered, dropped, or rejected — like any other traffic, so the
invariant monitor and the trace observe the whole exchange.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from ..mobileip.registration import (
    MOBILE_IP_PORT,
    RegistrationReply,
    RegistrationRequest,
)
from ..netsim.addressing import IPAddress
from ..netsim.node import Node
from ..netsim.packet import IPProto, Packet
from ..transport.sockets import TransportStack

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.simulator import Simulator

__all__ = ["Adversary"]


class Adversary(Node):
    """A malicious host: spoofs, replays, and malforms."""

    def __init__(self, name: str, simulator: "Simulator"):
        super().__init__(name, simulator)
        self.stack = TransportStack(self)
        self._reg_socket = self.stack.udp_socket(MOBILE_IP_PORT)
        self._reg_socket.on_receive(self._reply_input)
        # Every registration reply the victim's home agent sends back.
        self.replies: List[RegistrationReply] = []
        # Requests captured for replay (handed over by the harness; a
        # real attacker would sniff them off the victim's LAN).
        self.captured: List[RegistrationRequest] = []
        self.attacks_sent = 0
        simulator.metrics.counter(
            "adversary.attacks", read=lambda: self.attacks_sent, node=name)

    def _reply_input(
        self, data: Any, size: int, src_ip: IPAddress, src_port: int
    ) -> None:
        if isinstance(data, RegistrationReply):
            self.replies.append(data)

    # ------------------------------------------------------------------
    # Registration attacks
    # ------------------------------------------------------------------
    def spoof_registration(
        self,
        home_agent: IPAddress,
        victim_home_address: IPAddress,
        care_of: Optional[IPAddress] = None,
        lifetime: float = 300.0,
        auth: Optional[int] = None,
    ) -> RegistrationRequest:
        """Register the victim's home address to our own care-of address.

        Without the victim's key the attacker can at best guess ``auth``
        (default: omit the extension entirely).  Against an
        unauthenticated home agent this attack *succeeds* — which is
        precisely what the hardening tests demonstrate.
        """
        care_of = IPAddress(care_of) if care_of else self._own_address()
        request = RegistrationRequest(
            home_address=IPAddress(victim_home_address),
            care_of_address=care_of,
            lifetime=lifetime,
            ident=self.simulator.next_token(),
            auth=auth,
        )
        self.attacks_sent += 1
        self._reg_socket.sendto(
            request, request.size, IPAddress(home_agent), MOBILE_IP_PORT,
            src_override=care_of,
        )
        return request

    def capture(self, request: RegistrationRequest) -> None:
        """Record a legitimate request for later replay."""
        self.captured.append(request)

    def replay_captured(
        self, home_agent: IPAddress, index: int = -1
    ) -> Optional[RegistrationRequest]:
        """Re-send a captured request verbatim (valid authenticator,
        stale ident) — the attack the replay-protected ident stops."""
        if not self.captured:
            return None
        request = self.captured[index]
        self.attacks_sent += 1
        self._reg_socket.sendto(
            request, request.size, IPAddress(home_agent), MOBILE_IP_PORT,
            src_override=self._own_address(),
        )
        return request

    # ------------------------------------------------------------------
    # Malformed-tunnel attacks
    # ------------------------------------------------------------------
    def send_bogus_tunnel(
        self, dst: IPAddress, proto: IPProto = IPProto.IPIP, size: int = 64
    ) -> Packet:
        """A tunnel-protocol packet whose payload is not a packet."""
        packet = Packet(
            src=self._own_address(),
            dst=IPAddress(dst),
            proto=proto,
            payload="not-an-ip-datagram",
            payload_size=size,
        )
        self.attacks_sent += 1
        self.ip_send(packet)
        return packet

    def send_truncated_tunnel(self, dst: IPAddress) -> Packet:
        """A minimal-encapsulation packet with no forwarding header."""
        packet = Packet(
            src=self._own_address(),
            dst=IPAddress(dst),
            proto=IPProto.MINENC,
            payload=None,
            payload_size=8,
        )
        self.attacks_sent += 1
        self.ip_send(packet)
        return packet

    # ------------------------------------------------------------------
    def _own_address(self) -> IPAddress:
        address = self._preferred_source()
        if address is None:
            raise RuntimeError(f"adversary {self.name} has no address")
        return address

    def run_schedule(
        self, schedule: List[Tuple[float, str, dict]]
    ) -> None:
        """Schedule a list of attacks: ``(at, kind, kwargs)`` tuples.

        ``kind`` is one of ``spoof``, ``replay``, ``bogus``,
        ``truncated``; the fuzz harness drives this from its generated
        adversary events.
        """
        dispatch = {
            "spoof": self.spoof_registration,
            "replay": self.replay_captured,
            "bogus": self.send_bogus_tunnel,
            "truncated": self.send_truncated_tunnel,
        }
        for at, kind, kwargs in schedule:
            action = dispatch.get(kind)
            if action is None:
                raise ValueError(f"unknown adversary action {kind!r}")
            self.simulator.events.schedule(
                max(0.0, at - self.simulator.now),
                lambda a=action, k=dict(kwargs): a(**k),
                label=f"{self.name}:{kind}",
            )
