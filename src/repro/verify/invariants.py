"""Runtime invariant monitoring over the trace-event stream.

The simulator's :class:`~repro.netsim.trace.TraceLog` already sees
every packet event in a run.  The :class:`InvariantMonitor` rides that
stream — attaching with the same instance-rebinding wrap the span
recorder uses, so a run without it pays nothing — and checks a set of
properties that must hold in *any* correct execution, whatever the
topology, traffic mix, fault schedule, or adversary:

``no-loop``
    A datagram never revisits a forwarding node within one delivery
    attempt at the same tunnel phase (paper §3: conventional routers
    forward strictly by destination, so a stable routing table admits
    no cycles; revisits across encapsulation/decapsulation or source
    routing are legitimate and tracked as separate *phases*).
``ttl-decreases``
    TTL strictly decreases across consecutive forwards of one packet
    within one phase, and never goes negative (RFC 791; the mechanism
    that makes the paper's routing loops self-limiting).
``fragment-conservation``
    Every ``fragment`` event's pieces cover the original datagram's
    bytes exactly — no gap, no overlap, no invention — verified by
    round-tripping the pieces through a real
    :class:`~repro.netsim.fragmentation.ReassemblyBuffer` (§3.3's
    "doubling the packet count" must not change the byte count).
``tunnel-depth``
    Encapsulation nesting stays below a configured bound (§3.3's
    overhead argument assumes a small constant number of headers;
    unbounded nesting means a tunnel-routing loop).
``termination``
    Every unicast datagram ends in a ``deliver``, a classified
    ``drop``, or a traced ``lost`` — nothing silently disappears.
    Datagrams legitimately parked in ARP pending queues or reassembly
    buffers, or still in flight inside the grace window at the end of
    the run, are accounted for by :meth:`InvariantMonitor.finish`.
``binding-consistency``
    A node holding a :class:`~repro.mobileip.binding.BindingTable`
    (home agent, mobile-aware correspondent) only encapsulates toward
    the care-of address of a currently-valid binding for the inner
    destination (§2: tunneling to a stale care-of address strands the
    packet at an address the mobile host has left).
``filter-soundness``
    A boundary filter verdict is only ever produced by a boundary
    router whose posture has that filter enabled — a fully permissive
    network never drops on §3.1 policy.

Violations are recorded (not raised): the simulation run completes and
the caller inspects ``monitor.violations`` — which is what the fuzz
harness (:mod:`repro.verify.fuzz`) needs to shrink a failing case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..mobileip.binding import BindingTable
from ..netsim.fragmentation import ReassemblyBuffer, fragment
from ..netsim.packet import IPProto, Packet
from ..netsim.trace import TraceLog

__all__ = ["Violation", "InvariantMonitor", "INVARIANTS"]

INVARIANTS = (
    "no-loop",
    "ttl-decreases",
    "fragment-conservation",
    "tunnel-depth",
    "termination",
    "binding-consistency",
    "filter-soundness",
)

_TERMINAL_ACTIONS = frozenset(("deliver", "drop", "lost"))
# Trace actions that begin a new *phase* of a datagram's journey: a
# fresh (re)transmission, entering or leaving a tunnel, or a source
# route's re-submission.  Forwarding-node revisits and TTL resets
# across a phase boundary are legitimate; within a phase they are not.
_PHASE_ACTIONS = frozenset(("send", "encapsulate", "decapsulate", "source-route"))

_FILTER_SOURCE_PREFIX = "source-address-filter"
_FILTER_TRANSIT = "transit-traffic-forbidden"

DEFAULT_MAX_TUNNEL_DEPTH = 4
DEFAULT_GRACE = 2.0
MAX_RECORDED_VIOLATIONS = 200


def _tunnel_depth(packet: Packet) -> int:
    """Encapsulation nesting depth, counting minimal-encap layers too.

    ``Packet.encapsulation_depth`` only walks nested :class:`Packet`
    payloads; minimal encapsulation stashes the inner packet inside a
    ``_MinimalHeader`` shim, which this walker follows as well.
    """
    depth = 0
    current = packet
    while True:
        payload = getattr(current, "payload", None)
        if isinstance(payload, Packet):
            inner = payload
        else:
            original = getattr(payload, "original", None)
            inner = original if isinstance(original, Packet) else None
        if inner is None:
            return depth
        depth += 1
        current = inner


def _innermost(packet: Packet) -> Packet:
    """The innermost nested packet (the packet itself when not nested)."""
    current = packet
    while True:
        payload = getattr(current, "payload", None)
        if isinstance(payload, Packet):
            current = payload
            continue
        original = getattr(payload, "original", None)
        if isinstance(original, Packet):
            current = original
            continue
        return current


def _first_inner(packet: Packet) -> Optional[Packet]:
    """The immediately-nested packet, or None when not encapsulated."""
    payload = getattr(packet, "payload", None)
    if isinstance(payload, Packet):
        return payload
    original = getattr(payload, "original", None)
    return original if isinstance(original, Packet) else None


@dataclass(frozen=True)
class Violation:
    """One invariant violation, with enough context to debug it."""

    invariant: str
    time: float
    node: str
    trace_id: int
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "time": self.time,
            "node": self.node,
            "trace_id": self.trace_id,
            "message": self.message,
        }

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"[{self.invariant}] t={self.time:.6f} node={self.node} "
                f"trace={self.trace_id}: {self.message}")


@dataclass
class _TraceState:
    """Per-datagram bookkeeping."""

    phase: int = 0
    last_time: float = 0.0
    last_action: str = ""
    exempt: bool = False
    # (phase, frag_offset) -> set of forwarding nodes visited
    visited: Dict[Tuple[int, int], Set[str]] = field(default_factory=dict)
    # (phase, frag_offset) -> last TTL seen at a forward
    ttl: Dict[Tuple[int, int], int] = field(default_factory=dict)


class InvariantMonitor:
    """Checks run-wide invariants against the live trace stream."""

    def __init__(
        self,
        simulator=None,
        max_tunnel_depth: int = DEFAULT_MAX_TUNNEL_DEPTH,
        grace: float = DEFAULT_GRACE,
    ):
        """``grace`` is how close to the end of the run a datagram's
        last event may be for "still in flight" to excuse a missing
        terminal event at :meth:`finish`."""
        self._sim = simulator
        self.max_tunnel_depth = max_tunnel_depth
        self.grace = grace
        self.violations: List[Violation] = []
        self.violation_count = 0
        self.checks: Dict[str, int] = {name: 0 for name in INVARIANTS}
        self._states: Dict[int, _TraceState] = {}
        self._trace: Optional[TraceLog] = None
        self._wrapped_note = None
        self._note_was_instance = False
        self._finished = False
        if simulator is not None:
            metrics = simulator.metrics
            metrics.counter(
                "invariant.violations", read=lambda: self.violation_count)
            metrics.counter(
                "invariant.checks", read=lambda: sum(self.checks.values()))
            metrics.family(
                "invariant.checks_by_name", lambda: dict(self.checks))

    # ------------------------------------------------------------------
    # Attachment (same instance-rebinding wrap as obs.spans)
    # ------------------------------------------------------------------
    def attach(self, trace: TraceLog) -> None:
        if self._trace is not None:
            raise RuntimeError("invariant monitor is already attached")
        self._trace = trace
        self._note_was_instance = "note" in trace.__dict__
        original = trace.note
        self._wrapped_note = original
        on_event = self.on_event

        def note_with_invariants(time, node, action, packet, detail=""):
            original(time, node, action, packet, detail)
            on_event(time, node, action, packet, detail)

        trace.note = note_with_invariants  # type: ignore[method-assign]

    def detach(self) -> None:
        if self._trace is None:
            return
        if self._note_was_instance:
            self._trace.note = self._wrapped_note  # type: ignore[method-assign]
        else:
            del self._trace.note  # fall back to the class method
        self._trace = None
        self._wrapped_note = None

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def on_event(
        self, time: float, node: str, action: str, packet: Packet, detail: str = ""
    ) -> None:
        trace_id = packet.trace_id
        state = self._states.get(trace_id)
        if state is None:
            state = self._states[trace_id] = _TraceState()
        state.last_time = time
        state.last_action = action
        if packet.dst.is_multicast or packet.dst.is_broadcast:
            state.exempt = True

        if action in _PHASE_ACTIONS:
            state.phase += 1
            if action == "encapsulate":
                self._check_tunnel_depth(time, node, packet)
                self._check_binding(time, node, packet)
        elif action == "forward":
            self._check_forward(time, node, packet, state)
        elif action == "fragment":
            self._check_fragmentation(time, node, packet, detail)
        elif action == "drop":
            self._check_filter(time, node, packet, detail)

    # ------------------------------------------------------------------
    # Individual checks
    # ------------------------------------------------------------------
    def _violate(
        self, invariant: str, time: float, node: str, trace_id: int, message: str
    ) -> None:
        self.violation_count += 1
        if len(self.violations) < MAX_RECORDED_VIOLATIONS:
            self.violations.append(
                Violation(invariant, time, node, trace_id, message)
            )

    def _check_forward(
        self, time: float, node: str, packet: Packet, state: _TraceState
    ) -> None:
        key = (state.phase, packet.frag_offset)

        self.checks["no-loop"] += 1
        visited = state.visited.setdefault(key, set())
        if node in visited:
            self._violate(
                "no-loop", time, node, packet.trace_id,
                f"revisited forwarding node {node} in phase {state.phase} "
                f"(offset {packet.frag_offset})",
            )
        visited.add(node)

        self.checks["ttl-decreases"] += 1
        ttl = packet.ttl
        last = state.ttl.get(key)
        if ttl < 0:
            self._violate(
                "ttl-decreases", time, node, packet.trace_id,
                f"negative TTL {ttl} after forward",
            )
        elif last is not None and ttl >= last:
            self._violate(
                "ttl-decreases", time, node, packet.trace_id,
                f"TTL did not decrease across forwards ({last} -> {ttl})",
            )
        state.ttl[key] = ttl

    def _check_fragmentation(
        self, time: float, node: str, packet: Packet, detail: str
    ) -> None:
        self.checks["fragment-conservation"] += 1
        # The trace detail is "into N pieces (mtu M)"; parse both and
        # re-run the pure fragmentation to audit the split in situ.
        try:
            words = detail.split()
            count = int(words[1])
            mtu = int(words[-1].rstrip(")"))
        except (IndexError, ValueError):
            self._violate(
                "fragment-conservation", time, node, packet.trace_id,
                f"unparseable fragment detail {detail!r}",
            )
            return
        try:
            pieces = fragment(packet, mtu)
        except Exception as exc:  # noqa: BLE001 - audit must not raise
            self._violate(
                "fragment-conservation", time, node, packet.trace_id,
                f"re-fragmentation raised {exc!r}",
            )
            return
        if len(pieces) != count:
            self._violate(
                "fragment-conservation", time, node, packet.trace_id,
                f"fragment count mismatch: traced {count}, got {len(pieces)}",
            )
            return
        if packet.frag_offset != 0 or packet.more_fragments:
            return  # refragmented piece: coverage is checked at the whole
        buffer = ReassemblyBuffer(first_seen=0.0)
        for piece in pieces:
            rejection = buffer.add(piece)
            if rejection is not None:
                self._violate(
                    "fragment-conservation", time, node, packet.trace_id,
                    f"fragment pieces self-{rejection} at offset "
                    f"{piece.frag_offset}",
                )
                return
        if not buffer.complete():
            self._violate(
                "fragment-conservation", time, node, packet.trace_id,
                "fragment pieces do not cover the datagram",
            )
            return
        if buffer.total_size != packet.inner_size:
            self._violate(
                "fragment-conservation", time, node, packet.trace_id,
                f"fragment bytes not conserved: {buffer.total_size} "
                f"!= {packet.inner_size}",
            )

    def _check_tunnel_depth(self, time: float, node: str, packet: Packet) -> None:
        self.checks["tunnel-depth"] += 1
        depth = _tunnel_depth(packet)
        if depth > self.max_tunnel_depth:
            self._violate(
                "tunnel-depth", time, node, packet.trace_id,
                f"encapsulation depth {depth} exceeds bound "
                f"{self.max_tunnel_depth}",
            )

    def _check_binding(self, time: float, node: str, packet: Packet) -> None:
        if self._sim is None:
            return
        node_obj = self._sim.nodes.get(node)
        bindings = getattr(node_obj, "bindings", None)
        if not isinstance(bindings, BindingTable):
            return
        inner = _first_inner(packet)
        if inner is None:
            return
        self.checks["binding-consistency"] += 1
        binding = bindings.peek(inner.dst)
        if binding is None:
            # Not a binding-driven tunnel (e.g. an Out-IE reverse tunnel
            # whose inner dst is an arbitrary correspondent).  Only flag
            # when the node *claims* a binding it no longer has — i.e.
            # never, from peek alone; nothing to check.
            return
        if binding.care_of_address != packet.dst:
            # Encapsulating toward something other than the bound
            # care-of address while a binding exists is only legitimate
            # when the target is the binding's own home address (never
            # happens) — flag it.
            self._violate(
                "binding-consistency", time, node, packet.trace_id,
                f"tunneled {inner.dst} to {packet.dst}, but the binding "
                f"says care-of {binding.care_of_address}",
            )
            return
        if not binding.valid_at(time):
            self._violate(
                "binding-consistency", time, node, packet.trace_id,
                f"tunneled {inner.dst} via a binding expired at "
                f"{binding.expires_at:.6f} (now {time:.6f})",
            )

    def _check_filter(
        self, time: float, node: str, packet: Packet, detail: str
    ) -> None:
        is_source = detail.startswith(_FILTER_SOURCE_PREFIX)
        is_transit = detail == _FILTER_TRANSIT
        if not (is_source or is_transit):
            return
        self.checks["filter-soundness"] += 1
        if self._sim is None:
            return
        node_obj = self._sim.nodes.get(node)
        if node_obj is None:
            return
        if is_source and not getattr(node_obj, "source_filtering", True):
            self._violate(
                "filter-soundness", time, node, packet.trace_id,
                f"source filter fired ({detail}) with source_filtering off",
            )
        if is_transit and not getattr(node_obj, "forbid_transit", True):
            self._violate(
                "filter-soundness", time, node, packet.trace_id,
                "transit filter fired with forbid_transit off",
            )

    # ------------------------------------------------------------------
    # End-of-run accounting
    # ------------------------------------------------------------------
    def finish(self, now: Optional[float] = None) -> List[Violation]:
        """Run the termination check and return all violations.

        A datagram with no terminal event is excused when its bytes are
        demonstrably parked somewhere legitimate: an ARP pending queue,
        a reassembly buffer, or simply still in flight (last event
        within ``grace`` of the end of the run).  Idempotent.
        """
        if self._finished:
            return self.violations
        self._finished = True
        if now is None:
            now = self._sim.now if self._sim is not None else 0.0
        parked = self._parked_trace_ids()
        for trace_id, state in self._states.items():
            if state.exempt:
                continue
            self.checks["termination"] += 1
            if state.last_action in _TERMINAL_ACTIONS:
                continue
            if trace_id in parked:
                continue
            if now - state.last_time <= self.grace:
                continue  # still in flight at the cutoff
            self._violate(
                "termination", state.last_time, "-", trace_id,
                f"datagram vanished after {state.last_action!r} at "
                f"t={state.last_time:.6f} (run ended {now:.6f})",
            )
        return self.violations

    def _parked_trace_ids(self) -> Set[int]:
        parked: Set[int] = set()
        if self._sim is None:
            return parked
        for node in self._sim.nodes.values():
            arp = getattr(node, "arp", None)
            for queue in getattr(arp, "_pending", {}).values():
                for pending in queue:
                    parked.add(pending.trace_id)
            reassembler = getattr(node, "reassembler", None)
            for buffer in getattr(reassembler, "_buffers", {}).values():
                for frag in buffer.fragments.values():
                    parked.add(frag.trace_id)
        return parked

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def summary(self) -> Dict[str, Any]:
        by_invariant: Dict[str, int] = {}
        for violation in self.violations:
            by_invariant[violation.invariant] = (
                by_invariant.get(violation.invariant, 0) + 1
            )
        return {
            "checks": dict(self.checks),
            "violations": self.violation_count,
            "violations_by_invariant": by_invariant,
        }
