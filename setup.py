"""Legacy setup shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only lets
``pip install -e . --no-build-isolation`` fall back to the setuptools
develop path when PEP 517 editable builds are unavailable offline.
"""

from setuptools import setup

setup()
