"""Ablation — foreign-agent attachment vs. the paper's self-sufficiency.

§2: foreign agents "restrict the freedom of the mobile host to choose
from the full range of possible optimizations.  The most important of
these ... is the freedom to forgo the services of Mobile IP."

The ablation attaches the same mobile host both ways and compares:

* incoming delivery (both work — the IETF triangle is fine);
* outgoing delivery under a filtering visited network (the FA-attached
  host has no care-of address of its own, so it cannot reverse-tunnel
  with a local source: its plain home-source packets die at the
  boundary, while the self-sufficient host's Out-IE survives);
* the Out-DT option (unavailable via FA: there is no local address to
  use).
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.mobileip import Awareness


def run_attachment(with_fa: bool, filtering: bool, seed: int):
    scenario = build_scenario(seed=seed, ch_awareness=Awareness.CONVENTIONAL,
                              with_foreign_agent=with_fa,
                              visited_filtering=filtering)
    sim = scenario.sim

    incoming = []
    mh_sock = scenario.mh.stack.udp_socket(7000)
    mh_sock.on_receive(lambda d, s, ip, p: incoming.append(d))
    ch_in = scenario.ch.stack.udp_socket()
    ch_in.sendto("inbound", 100, MH_HOME_ADDRESS, 7000)
    sim.run_for(10)

    outgoing = []
    ch_out = scenario.ch.stack.udp_socket(6000)
    ch_out.on_receive(lambda d, s, ip, p: outgoing.append(str(ip)))
    mh_out = scenario.mh.stack.udp_socket()
    mh_out.sendto("outbound", 100, scenario.ch_ip, 6000,
                  src_override=MH_HOME_ADDRESS)
    sim.run_for(20)

    has_out_dt = scenario.mh.care_of is not None and scenario.mh.owns_address(
        scenario.mh.care_of
    )
    return {
        "registered": scenario.mh.registered,
        "incoming_ok": incoming == ["inbound"],
        "outgoing_ok": bool(outgoing),
        "out_dt_available": has_out_dt,
    }


def run_ablation():
    rows = []
    for with_fa in (False, True):
        for filtering in (False, True):
            rows.append(((with_fa, filtering),
                         run_attachment(with_fa, filtering,
                                        8200 + with_fa * 2 + filtering)))
    return rows


def test_abl_foreign_agent(benchmark, reporter):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = TextTable(
        "Ablation: foreign-agent vs. self-sufficient attachment",
        ["attachment", "visited filtering", "registered", "incoming",
         "outgoing (home src)", "Out-DT available"],
    )
    for (with_fa, filtering), r in rows:
        table.add_row("foreign agent" if with_fa else "self-sufficient",
                      filtering, r["registered"], r["incoming_ok"],
                      r["outgoing_ok"], r["out_dt_available"])
    reporter.table(table)

    results = dict(rows)
    # Both attachments register and receive in all environments.
    for r in results.values():
        assert r["registered"]
        assert r["incoming_ok"]
    # Self-sufficient host delivers outgoing traffic everywhere (the
    # engine reverse-tunnels when filtered); it always has Out-DT.
    assert results[(False, False)]["outgoing_ok"]
    assert results[(False, True)]["outgoing_ok"]
    assert results[(False, True)]["out_dt_available"]
    # FA-attached host: fine on a permissive network, dead on a
    # filtering one, and never has the Out-DT escape hatch — the
    # paper's restriction argument, quantified.
    assert results[(True, False)]["outgoing_ok"]
    assert not results[(True, True)]["outgoing_ok"]
    assert not results[(True, True)]["out_dt_available"]
