"""§3.1 — Source-address trust and the security motivation.

Reproduces the section's three-way story around an NFS server that
trusts by source address:

1. a spoofed request from outside, claiming an inside address, is
   dropped by the filtering boundary router (the defense that also
   kills Out-DH);
2. the same spoof **succeeds** when the boundary is permissive — "we
   effectively allow any machine on the Internet to impersonate any
   machine in our organization";
3. the legitimate mobile host gets service back via the reverse tunnel
   (Out-IE), spoof protection intact.
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.apps import NFSClient, NFSServer
from repro.netsim import IPAddress, Node
from repro.transport import TransportStack


def stage(seed: int, home_filtering: bool):
    scenario = build_scenario(seed=seed, ch_awareness=None,
                              home_filtering=home_filtering)
    server_node = Node("nfs", scenario.sim)
    server_ip = scenario.net.add_host("home", server_node)
    server = NFSServer(TransportStack(server_node),
                       exports=[scenario.home.prefix])
    return scenario, server, server_ip


def rpc(scenario, client_stack, server_ip, src_override=None, retries=1):
    client = NFSClient(client_stack, server_ip, max_retries=retries)
    results = []
    client.call("read", "/export/payroll", results.append,
                src_override=src_override)
    scenario.sim.run_for(30)
    if not results or results[0] is None:
        return "timeout"
    return "granted" if results[0].ok else "denied"


def run_security():
    rows = []
    for home_filtering in (True, False):
        # 1/2. Spoofed request from an attacker in the visited domain.
        scenario, server, server_ip = stage(3001 + home_filtering, home_filtering)
        attacker = Node("attacker", scenario.sim)
        scenario.net.add_host("visited", attacker)
        # Attacker's own site must not stop the spoof for the test to
        # isolate the *home* boundary's behaviour.
        scenario.visited.boundary.engine.rules.clear()
        rpc(scenario, TransportStack(attacker), server_ip,
            src_override=IPAddress("10.1.0.99"))
        # §3.1: the attacker never sees replies (they go to the spoofed
        # address), but the attack *executed* if the server granted it.
        outcome = "server-executed" if server.requests_granted else "blocked"
        rows.append((
            "spoofed inside-source request",
            "filtering" if home_filtering else "permissive",
            outcome,
            server.requests_granted,
        ))
    # 3. Legitimate mobile host via reverse tunnel, filtering on.
    scenario, server, server_ip = stage(3003, home_filtering=True)
    outcome = rpc(scenario, scenario.mh.stack, server_ip,
                  src_override=MH_HOME_ADDRESS, retries=3)
    rows.append((
        "mobile host via Out-IE reverse tunnel",
        "filtering",
        outcome,
        server.requests_granted,
    ))
    return rows


def test_sec31_security(benchmark, reporter):
    rows = benchmark.pedantic(run_security, rounds=1, iterations=1)
    table = TextTable(
        "§3.1: NFS source-address trust vs. boundary policy",
        ["request", "home boundary", "outcome", "server grants"],
    )
    for row in rows:
        table.add_row(*row)
    reporter.table(table)

    outcomes = {(row[0], row[1]): row[2] for row in rows}
    assert outcomes[("spoofed inside-source request", "filtering")] == "blocked"
    assert outcomes[
        ("spoofed inside-source request", "permissive")] == "server-executed"
    assert outcomes[
        ("mobile host via Out-IE reverse tunnel", "filtering")] == "granted"
