"""§4 — Loose source routing vs. encapsulation.

    "Although we could use loose source routing, this achieves little
    that can't be done equally well using an encapsulating header.
    Current IP routers typically handle packets with options much more
    slowly than they handle normal unadorned IP packets."

The benchmark sends the same home-address datagram MH -> CH three ways
— LSR via the home agent, Out-IE encapsulation via the home agent, and
plain Out-DH — over a permissive and a filtering visited network, and
reports delivery, latency (the option slow path is real), and bytes.
LSR loses on both §4 counts: routers are slower on it, and it cannot
hide the home source address from filters the way the encapsulating
header does.
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.core import ProbeStrategy
from repro.core.modes import AddressPlan, OutMode, build_outgoing
from repro.mobileip import Awareness
from repro.netsim.packet import IPProto, Packet
from repro.transport import UDPDatagram

PAYLOAD = 400


def run_variant(variant: str, filtering: bool, seed: int):
    # The filtering knob drives *both* boundaries: the LSR packet's
    # visible home source must also pass the home domain's ingress
    # spoof check on its way to the home agent.
    scenario = build_scenario(seed=seed, ch_awareness=Awareness.CONVENTIONAL,
                              visited_filtering=filtering,
                              home_filtering=filtering,
                              strategy=ProbeStrategy.AGGRESSIVE_FIRST)
    plan = AddressPlan(MH_HOME_ADDRESS, scenario.mh.care_of,
                       scenario.ha_ip, scenario.ch_ip)
    sim = scenario.sim
    arrival = {}
    sock = scenario.ch.stack.udp_socket(6000)
    sock.on_receive(lambda d, s, ip, p: arrival.setdefault("t", sim.now))

    datagram = UDPDatagram(6001, 6000, "data", PAYLOAD)
    if variant == "lsr-via-ha":
        packet = Packet(src=plan.home, dst=plan.home_agent, proto=IPProto.UDP,
                        payload=datagram, payload_size=datagram.size,
                        source_route=(plan.correspondent,))
    elif variant == "encap-via-ha":
        packet = build_outgoing(OutMode.OUT_IE, plan, payload=datagram,
                                payload_size=datagram.size, proto=IPProto.UDP)
    else:  # plain Out-DH
        packet = build_outgoing(OutMode.OUT_DH, plan, payload=datagram,
                                payload_size=datagram.size, proto=IPProto.UDP)
    start = sim.now
    size = packet.wire_size
    scenario.mh.ip_send(packet, bypass_overrides=True)
    sim.run_for(20)
    return {
        "delivered": "t" in arrival,
        "latency": arrival["t"] - start if arrival else None,
        "first_hop_bytes": size,
    }


def run_comparison():
    rows = []
    for filtering in (False, True):
        for variant in ("plain-out-dh", "lsr-via-ha", "encap-via-ha"):
            rows.append(((variant, filtering),
                         run_variant(variant, filtering, 8501)))
    return rows


def test_sec4_source_routing(benchmark, reporter):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = TextTable(
        "§4: Loose source routing vs. encapsulation (MH->CH, home source)",
        ["mechanism", "visited filtering", "delivered", "latency (s)",
         "first-hop bytes"],
    )
    for (variant, filtering), r in rows:
        table.add_row(variant, filtering, r["delivered"],
                      r["latency"] if r["latency"] is not None else "-",
                      r["first_hop_bytes"])
    reporter.table(table)

    results = dict(rows)
    # Permissive network: everything is delivered...
    for variant in ("plain-out-dh", "lsr-via-ha", "encap-via-ha"):
        assert results[(variant, False)]["delivered"], variant
    # ...but LSR is slower than encapsulation over the same path: every
    # router on the (longer, via-HA) route slow-paths the options.
    assert (results[("lsr-via-ha", False)]["latency"]
            > results[("encap-via-ha", False)]["latency"])
    # Filtering network: encapsulation survives, LSR does not — the
    # visible home source address kills it just like plain Out-DH.
    assert results[("encap-via-ha", True)]["delivered"]
    assert not results[("lsr-via-ha", True)]["delivered"]
    assert not results[("plain-out-dh", True)]["delivered"]
    # Byte cost: the one-hop LSR option (8 B) is cheaper than IP-in-IP
    # (20 B) — §2 concedes the space argument; §4 rejects LSR anyway.
    assert (results[("lsr-via-ha", False)]["first_hop_bytes"]
            < results[("encap-via-ha", False)]["first_hop_bytes"])
