"""§2 — Registration: the control-plane cost of a move.

    "After the mobile host has connected to the visited network ... it
    registers its new location with its home agent. ... If the mobile
    host moves again to a different point of attachment on the
    Internet, then it must again inform its home agent of its new
    location."

The benchmark measures what a move costs before any data can flow the
Mobile IP way: registration completion time (one round trip to the
home agent, so it grows with distance from home), control bytes, and
the end-to-end service blackout seen by an inbound stream (§2's
transition window).
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, ascii_series, build_scenario
from repro.mobileip import Awareness

BACKBONE = 7


def run_move(visited_attach: int, seed: int):
    scenario = build_scenario(seed=seed, backbone_size=BACKBONE,
                              visited_attach=1,   # start near home
                              ch_awareness=Awareness.CONVENTIONAL,
                              mobile_starts_away=False)
    scenario.net.add_domain("next-stop", "10.5.0.0/16",
                            attach_at=visited_attach)
    sim = scenario.sim
    scenario.mh.move_to(scenario.net, "visited")
    sim.run_for(5)

    # Inbound stream every 200ms; measure the blackout around the move.
    arrivals = []
    sock = scenario.mh.stack.udp_socket(7000)
    sock.on_receive(lambda d, s, ip, p: arrivals.append((d, sim.now)))
    ch_sock = scenario.ch.stack.udp_socket()

    def stream(step=[0]):
        if step[0] >= 100:
            return
        step[0] += 1
        ch_sock.sendto(step[0], 60, MH_HOME_ADDRESS, 7000)
        sim.events.schedule(0.2, stream)

    stream()
    move_at = sim.now + 4.0
    registered_at = {}

    def move():
        scenario.mh.move_to(scenario.net, "next-stop")
        scenario.mh.on_registered = (
            lambda reply: registered_at.setdefault("t", sim.now))

    sim.events.schedule(4.0, move)
    sim.run_for(40)

    registration_time = registered_at.get("t", float("inf")) - move_at
    before = [t for _d, t in arrivals if t < move_at]
    after = [t for _d, t in arrivals if t > move_at]
    blackout = (after[0] - move_at) if after else float("inf")
    return {
        "registration_time": registration_time,
        "blackout": blackout,
        "attempts": scenario.mh.registration_attempts,
    }


def run_sweep():
    rows = []
    for attach in (1, 3, 6):
        distance = attach  # home is at 0
        rows.append((distance, run_move(attach, seed=9200 + attach)))
    return rows


def test_sec2_registration_overhead(benchmark, reporter):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = TextTable(
        "§2: Cost of a move vs. distance from home (inbound stream @200ms)",
        ["new domain distance from home", "registration time (s)",
         "inbound blackout (s)", "registration attempts"],
    )
    for distance, r in rows:
        table.add_row(distance, r["registration_time"], r["blackout"],
                      r["attempts"])
    reporter.table(table)
    reporter.text(ascii_series(
        "§2 (shape): registration round-trip vs. distance from home",
        labels=[f"dist {distance}" for distance, _r in rows],
        values=[r["registration_time"] for _d, r in rows],
        unit="s",
    ))

    results = dict(rows)
    # Registration time grows with distance from home...
    times = [results[d]["registration_time"] for d in (1, 3, 6)]
    assert times[0] < times[1] < times[2]
    # ...and stays a sub-second, single-attempt affair on a healthy net.
    for distance in (1, 3, 6):
        assert results[distance]["registration_time"] < 1.0
    # The inbound blackout is bounded by registration + one stream gap.
    for distance in (1, 3, 6):
        assert results[distance]["blackout"] < 2.0
