"""Simulator performance: regression guard for the substrate itself.

Not a paper figure — a maintenance benchmark.  If scenario construction
or event throughput regresses badly, every other benchmark's wall time
suffers; this one isolates the substrate so a regression is visible at
its source.

The workloads live in :mod:`repro.bench` (shared with the
``python -m repro.bench`` harness that writes the committed
``BENCH_*.json`` perf trajectory); finer-grained variants are in
``benchmarks/perf/test_microbench.py``.
"""

from repro.bench import (
    run_event_cancel_churn,
    run_event_churn,
    run_scenario_traffic,
)


def test_perf_event_churn(benchmark, reporter):
    processed, unit = benchmark(run_event_churn)
    assert unit == "events"
    assert processed >= 50_000


def test_perf_event_cancel_churn(benchmark, reporter):
    """Timer-heavy shape: schedule, cancel half, poll ``pending``."""
    timers, unit = benchmark(run_event_cancel_churn)
    assert unit == "timers"
    assert timers == 20_000


def test_perf_scenario_traffic(benchmark, reporter):
    # run_scenario_traffic asserts internally that every datagram was
    # tunneled by the home agent; the unit count is the datagram count.
    packets, unit = benchmark(run_scenario_traffic)
    assert unit == "packets"
    assert packets == 200
