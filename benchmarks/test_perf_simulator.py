"""Simulator performance: regression guard for the substrate itself.

Not a paper figure — a maintenance benchmark.  If scenario construction
or event throughput regresses badly, every other benchmark's wall time
suffers; this one isolates the substrate so a regression is visible at
its source.
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.mobileip import Awareness
from repro.netsim import EventQueue, Simulator


def run_event_churn():
    """A tight event loop: 50k self-rescheduling events."""
    queue = EventQueue()
    remaining = {"n": 50_000}

    def tick():
        if remaining["n"] > 0:
            remaining["n"] -= 1
            queue.schedule(0.001, tick)

    for _ in range(10):
        queue.schedule(0.0, tick)
    queue.run(max_events=200_000)
    return queue.processed


def run_scenario_traffic():
    """Build the standard stage and push 200 datagrams through the
    triangle — the workload shape most benchmarks use."""
    scenario = build_scenario(seed=1401, ch_awareness=Awareness.CONVENTIONAL)
    sock = scenario.mh.stack.udp_socket(7000)
    sock.on_receive(lambda *a: None)
    ch_sock = scenario.ch.stack.udp_socket()
    for index in range(200):
        scenario.sim.events.schedule(
            index * 0.01,
            lambda: ch_sock.sendto("x", 100, MH_HOME_ADDRESS, 7000),
        )
    scenario.sim.run_for(30)
    return scenario.ha.packets_tunneled


def test_perf_event_churn(benchmark, reporter):
    processed = benchmark(run_event_churn)
    assert processed >= 50_000


def test_perf_scenario_traffic(benchmark, reporter):
    tunneled = benchmark(run_scenario_traffic)
    assert tunneled == 200
