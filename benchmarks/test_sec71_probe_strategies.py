"""§7.1.2 — Which home-address method to start with.

Reproduces the section's cost argument over the three strategies:

* conservative-first "can be wasteful, because in many cases either
  one or both of Out-DH and Out-DE will work fine";
* aggressive-first "can also be wasteful because in some easily
  identifiable circumstances ... Out-DH is known to fail every time";
* the rule-seeded policy table resolves it.

A TCP conversation (12 messages) runs against a permissive and a
filtering environment under each strategy.  The table reports time to
first delivery, total retransmissions (wasted probes), mode changes,
and where the ladder settled.
"""

from repro.analysis import TextTable, build_scenario
from repro.core import OutMode, ProbeStrategy
from repro.core.policy import Disposition, MobilityPolicyTable
from repro.mobileip import Awareness

MESSAGES = 12


def run_conversation(strategy, filtering, seed, policy=None):
    scenario = build_scenario(seed=seed, strategy=strategy, policy=policy,
                              visited_filtering=filtering,
                              ch_awareness=Awareness.DECAP_CAPABLE)
    sim = scenario.sim
    got = []
    scenario.ch.stack.listen(
        6000,
        lambda conn: setattr(conn, "on_data",
                             lambda d, s: conn.send(20, ("ack", d))),
    )
    conn = scenario.mh.stack.connect(scenario.ch_ip, 6000)
    first_delivery = {}
    conn.on_data = lambda d, s: (got.append(d),
                                 first_delivery.setdefault("t", sim.now))
    start = sim.now

    def tick(count=[0]):
        if count[0] >= MESSAGES or not (conn.is_open or
                                        conn.state.value == "SYN_SENT"):
            return
        count[0] += 1
        conn.send(50, count[0])
        sim.events.schedule(2.0, tick)

    conn.on_established = tick
    sim.run_for(240)
    record = scenario.mh.engine.cache.records.get(scenario.ch_ip)
    return {
        "echoes": len(got),
        "first_delivery": (first_delivery.get("t", float("inf")) - start),
        "retransmissions": conn.retransmissions,
        "mode_changes": record.mode_changes if record else 0,
        "final_mode": record.current.value if record else "-",
        "tunneled_packets": scenario.mh.tunnel.encapsulated_count,
    }


def run_strategies():
    rows = []
    optimistic_policy = MobilityPolicyTable(default=Disposition.PESSIMISTIC)
    optimistic_policy.add("10.3.0.0/16", Disposition.OPTIMISTIC)
    pessimistic_policy = MobilityPolicyTable(default=Disposition.PESSIMISTIC)

    cases = [
        ("conservative-first", ProbeStrategy.CONSERVATIVE_FIRST, None),
        ("aggressive-first", ProbeStrategy.AGGRESSIVE_FIRST, None),
    ]
    for filtering in (False, True):
        for label, strategy, policy in cases:
            rows.append((label, filtering,
                         run_conversation(strategy, filtering, 7101, policy)))
        # Rule-seeded with the *right* rule for the environment.
        policy = pessimistic_policy if filtering else optimistic_policy
        rows.append(("rule-seeded (correct rule)", filtering,
                     run_conversation(ProbeStrategy.RULE_SEEDED, filtering,
                                      7101, policy)))
    return rows


def test_sec71_probe_strategies(benchmark, reporter):
    rows = benchmark.pedantic(run_strategies, rounds=1, iterations=1)
    table = TextTable(
        f"§7.1.2: Probe strategies, {MESSAGES}-message TCP conversation",
        ["strategy", "filtered path", "echoes", "first delivery (s)",
         "retransmissions", "mode changes", "final mode", "tunneled pkts"],
    )
    for label, filtering, r in rows:
        table.add_row(label, filtering, r["echoes"], r["first_delivery"],
                      r["retransmissions"], r["mode_changes"],
                      r["final_mode"], r["tunneled_packets"])
    reporter.table(table)

    results = {(label, filtering): r for label, filtering, r in rows}

    permissive_aggr = results[("aggressive-first", False)]
    permissive_cons = results[("conservative-first", False)]
    filtered_aggr = results[("aggressive-first", True)]
    filtered_cons = results[("conservative-first", True)]
    seeded_perm = results[("rule-seeded (correct rule)", False)]
    seeded_filt = results[("rule-seeded (correct rule)", True)]

    # Everyone eventually converses.
    for r in results.values():
        assert r["echoes"] == MESSAGES

    # Permissive network: aggressive wins immediately (no retx, Out-DH,
    # zero tunneled packets); conservative wastes tunneled packets
    # before upgrading.
    assert permissive_aggr["retransmissions"] == 0
    assert permissive_aggr["final_mode"] == OutMode.OUT_DH.value
    assert permissive_cons["tunneled_packets"] > 0
    assert permissive_cons["mode_changes"] >= 1

    # Filtering network: aggressive pays retransmissions probing the
    # known-to-fail modes; conservative connects without any.
    assert filtered_aggr["retransmissions"] > 0
    assert filtered_cons["retransmissions"] == 0
    assert filtered_aggr["first_delivery"] > filtered_cons["first_delivery"]

    # Rule-seeded with the right rule: best of both worlds.  On the
    # permissive path it starts (and stays) at Out-DH with no probing;
    # on the filtered path it starts conservative and reaches Out-DE
    # without a single client retransmission (tentative Out-DH upgrades
    # are caught by the *receive-side* §7.1.2 signal — the server's
    # duplicate echoes — before the client ever retransmits).
    assert seeded_perm["retransmissions"] == 0
    assert seeded_perm["mode_changes"] == 0
    assert seeded_perm["final_mode"] == OutMode.OUT_DH.value
    assert seeded_filt["retransmissions"] == 0
    assert seeded_filt["final_mode"] in (OutMode.OUT_IE.value,
                                         OutMode.OUT_DE.value)
    assert seeded_filt["first_delivery"] < filtered_aggr["first_delivery"]
