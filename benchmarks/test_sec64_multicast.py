"""§6.4 — Multicast: local join vs. tunneling from home.

Reproduces: "Tunneling multicast packets from the home network to the
visited network is ... a little self-defeating.  It would be better if
the multicast application were able to join the multicast group through
its real physical interface on the current local network."

Both delivery styles are run against the same stream; the table
reports delivery, backbone bytes consumed, and per-packet size — the
local join uses zero wide-area bytes, the tunnel pays the whole stream
plus encapsulation overhead.
"""

from repro.analysis import TextTable, build_scenario
from repro.apps import HomeTunnelRelay, MulticastReceiver, MulticastSource
from repro.netsim import IPAddress, Node
from repro.transport import TransportStack

GROUP = IPAddress("224.9.9.9")
STREAM_COUNT = 20
PAYLOAD = 500


def backbone_bytes(scenario):
    return sum(
        count for name, count in scenario.sim.trace.bytes_by_link.items()
        if name.startswith("p2p") or name.startswith("uplink")
    )


def run_local_join(seed):
    """The §6.4 recommendation: the MH joins on the visited LAN."""
    scenario = build_scenario(seed=seed, ch_awareness=None)
    sender = Node("mbone-src", scenario.sim)
    scenario.net.add_host("visited", sender)
    baseline = backbone_bytes(scenario)
    source = MulticastSource(TransportStack(sender), GROUP,
                             count=STREAM_COUNT, interval=0.05,
                             payload_size=PAYLOAD)
    receiver = MulticastReceiver(scenario.mh.stack, GROUP)
    source.start()
    scenario.sim.run_for(30)
    return {
        "received": receiver.received,
        "backbone_bytes": backbone_bytes(scenario) - baseline,
        "decapsulations": scenario.mh.tunnel.decapsulated_count,
    }


def run_home_tunnel(seed):
    """The self-defeating alternative: join at home, tunnel to the MH."""
    scenario = build_scenario(seed=seed, ch_awareness=None)
    sender = Node("mbone-src", scenario.sim)
    scenario.net.add_host("home", sender)
    baseline = backbone_bytes(scenario)
    source = MulticastSource(TransportStack(sender), GROUP,
                             count=STREAM_COUNT, interval=0.05,
                             payload_size=PAYLOAD)
    relay = HomeTunnelRelay(scenario.ha, scenario.ha.tunnel, GROUP)
    relay.relay_to(scenario.mh.care_of)
    receiver = MulticastReceiver(scenario.mh.stack, GROUP)
    source.start()
    scenario.sim.run_for(30)
    return {
        "received": receiver.received,
        "backbone_bytes": backbone_bytes(scenario) - baseline,
        "decapsulations": scenario.mh.tunnel.decapsulated_count,
    }


def run_multicast():
    return {
        "local join (visited LAN)": run_local_join(6401),
        "tunnel from home network": run_home_tunnel(6402),
    }


def test_sec64_multicast(benchmark, reporter):
    results = benchmark.pedantic(run_multicast, rounds=1, iterations=1)
    table = TextTable(
        f"§6.4: Multicast stream of {STREAM_COUNT} x {PAYLOAD}B packets",
        ["delivery", "packets received", "wide-area bytes", "decapsulations"],
    )
    for label, r in results.items():
        table.add_row(label, r["received"], r["backbone_bytes"],
                      r["decapsulations"])
    reporter.table(table)

    local = results["local join (visited LAN)"]
    tunnel = results["tunnel from home network"]
    # Both deliver the whole stream...
    assert local["received"] == STREAM_COUNT
    assert tunnel["received"] == STREAM_COUNT
    # ...but the local join never touches the backbone, while the tunnel
    # pays at least the whole stream's bytes plus encapsulation.
    assert local["backbone_bytes"] == 0
    per_packet_floor = PAYLOAD + 8 + 20 + 20   # UDP + inner IP + outer IP
    assert tunnel["backbone_bytes"] >= STREAM_COUNT * per_packet_floor
    assert local["decapsulations"] == 0
    assert tunnel["decapsulations"] == STREAM_COUNT
