"""§3.3 at flow level — what encapsulation costs a bulk TCP transfer.

Two §3.3 effects compound for a tunneled flow:

* full-MSS TCP segments (1460 B payload -> 1500 B packets) exceed the
  MTU once 20 encapsulation bytes are added, so **every data packet
  fragments in the tunnel** — the "doubling the packet count" case is
  not an edge case for bulk TCP, it is the common case;
* the tunnel's longer path inflates the RTT, which bounds a windowed
  sender's goodput.

The benchmark transfers 400 kB three ways and reports goodput, total
first-hop IP packets, and fragmentation events.
"""

from repro.analysis import TextTable, build_scenario
from repro.apps import BulkClient, BulkServer
from repro.core.policy import Disposition, MobilityPolicyTable
from repro.mobileip import Awareness

TRANSFER = 400_000


def run_transfer(label: str, seed: int, tunneled: bool, bound_care_of: bool):
    if tunneled:
        policy = MobilityPolicyTable(default=Disposition.HOME_ONLY)
    else:
        # Pin the direct case at Out-DH from the first packet so the
        # measurement has no early tunnel phase.
        policy = MobilityPolicyTable(default=Disposition.OPTIMISTIC)
    # Permissive visited net throughout, so the Out-DH flow is viable
    # and the comparison isolates encapsulation/path effects.
    scenario = build_scenario(seed=seed, ch_awareness=Awareness.CONVENTIONAL,
                              visited_filtering=False, policy=policy)
    server = BulkServer(scenario.ch.stack)
    client = BulkClient(scenario.mh.stack)
    frag_before = scenario.sim.trace.action_counts["fragment"]
    done = []
    result = client.transfer(
        scenario.ch_ip, TRANSFER, on_done=done.append,
        bound_ip=scenario.mh.care_of if bound_care_of else None,
    )
    scenario.sim.run_for(600)
    fragments = scenario.sim.trace.action_counts["fragment"] - frag_before
    return {
        "label": label,
        "completed": bool(done) and not result.failed,
        "goodput_mbps": (result.goodput_bps or 0) / 1e6,
        "fragment_events": fragments,
        "received": server.bytes_received,
    }


def run_goodput():
    return [
        run_transfer("Out-DT (care-of endpoint)", 9301,
                     tunneled=False, bound_care_of=True),
        run_transfer("Out-DH (home source, permissive)", 9302,
                     tunneled=False, bound_care_of=False),
        run_transfer("Out-IE/In-IE (full tunnel)", 9303,
                     tunneled=True, bound_care_of=False),
    ]


def test_sec33_goodput(benchmark, reporter):
    rows = benchmark.pedantic(run_goodput, rounds=1, iterations=1)
    table = TextTable(
        f"§3.3 flow level: {TRANSFER//1000} kB bulk TCP transfer",
        ["configuration", "completed", "goodput (Mbps)", "fragment events"],
    )
    for row in rows:
        table.add_row(row["label"], row["completed"], row["goodput_mbps"],
                      row["fragment_events"])
    reporter.table(table)

    out_dt, out_dh, tunnel = rows
    assert all(row["completed"] for row in rows)
    assert all(row["received"] == TRANSFER for row in rows)
    # The untunneled flows never fragment; the tunnel fragments on
    # (nearly) every full-MSS data packet.
    assert out_dt["fragment_events"] == 0
    assert out_dh["fragment_events"] == 0
    assert tunnel["fragment_events"] >= TRANSFER // 1460 - 5
    # Goodput ordering: direct beats the tunnel.
    assert out_dt["goodput_mbps"] > tunnel["goodput_mbps"]
    assert out_dh["goodput_mbps"] > tunnel["goodput_mbps"]
