"""§8 — "Most communication does not need to use Mobile IP."

The paper's conclusion, as a macro-workload measurement.  A visiting
mobile host runs a realistic 1996 session — web-heavy browsing (HTTP
fetches + DNS lookups) alongside one long-lived telnet — under three
configurations:

* **adaptive** (the paper's system): port heuristics route HTTP/DNS
  over Out-DT while telnet rides Mobile IP;
* **everything-tunneled** (privacy / naive Mobile IP): every packet
  through the home agent;
* **no Mobile IP**: everything on the temporary address — cheapest,
  but the telnet session dies when the host moves mid-session.

The table reports the Mobile IP fraction of the mobile host's packets,
wide-area byte totals, and whether the long-lived session survived the
move — the three-way trade §8 argues only the adaptive system wins.
"""

from repro.analysis import TextTable, build_scenario, snapshot
from repro.apps import DNSLookupWorkload, HTTPClient, HTTPServer, TelnetServer, TelnetSession
from repro.mobileip import Awareness

FETCHES = 8
LOOKUPS = 8


def run_configuration(label: str, privacy: bool, bind_care_of: bool, seed: int):
    scenario = build_scenario(seed=seed, ch_awareness=Awareness.CONVENTIONAL,
                              with_dns=True, privacy=privacy)
    scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3)
    HTTPServer(scenario.ch.stack, page_size=12_000)
    TelnetServer(scenario.ch.stack)
    sim = scenario.sim

    dns = DNSLookupWorkload(scenario.mh.stack, scenario.dns_ip)
    http = HTTPClient(scenario.mh.stack, max_reloads=2)
    fetches = []
    telnet = TelnetSession(
        scenario.mh.stack, scenario.ch_ip, think_time=2.0, keystrokes=12,
        bound_ip=scenario.mh.care_of if bind_care_of else None,
    )

    def browse(step=[0]):
        if step[0] >= FETCHES:
            return
        step[0] += 1
        dns.lookup(f"site{step[0]}.example")
        fetches.append(http.fetch(scenario.ch_ip))
        sim.events.schedule(2.0, browse)

    browse()
    sim.events.schedule(9.0, lambda: scenario.mh.move_to(scenario.net,
                                                         "visited2"))
    sim.run_for(240)
    stats = snapshot(scenario)

    mh_sent = stats.packets_sent["mh"]
    mobile_ip_fraction = stats.tunneled_by_mh / mh_sent if mh_sent else 0.0
    return {
        "label": label,
        "mh_packets": mh_sent,
        "tunneled": stats.tunneled_by_mh,
        "mobile_ip_fraction": mobile_ip_fraction,
        "wide_area_bytes": stats.wide_area_bytes,
        "pages_ok": sum(1 for f in fetches if f.completed),
        "telnet_survived": telnet.survived,
        "telnet_echoes": telnet.echoes_received,
    }


def run_mix():
    return [
        run_configuration("adaptive (the paper)", privacy=False,
                          bind_care_of=False, seed=8801),
        run_configuration("everything tunneled", privacy=True,
                          bind_care_of=False, seed=8801),
        run_configuration("no Mobile IP", privacy=False,
                          bind_care_of=True, seed=8801),
    ]


def test_sec8_traffic_mix(benchmark, reporter):
    rows = benchmark.pedantic(run_mix, rounds=1, iterations=1)
    table = TextTable(
        f"§8: Mixed workload ({FETCHES} pages + {LOOKUPS} lookups + telnet) "
        "across one move",
        ["configuration", "MH packets", "tunneled", "Mobile IP fraction",
         "wide-area bytes", "pages ok", "telnet survived", "echoes"],
    )
    for row in rows:
        table.add_row(row["label"], row["mh_packets"], row["tunneled"],
                      row["mobile_ip_fraction"], row["wide_area_bytes"],
                      row["pages_ok"], row["telnet_survived"],
                      row["telnet_echoes"])
    reporter.table(table)

    adaptive, tunneled, plain = rows
    # §8's claim in numbers: under the adaptive system only a minority
    # of packets (the telnet conversation) used Mobile IP at all.
    assert 0 < adaptive["mobile_ip_fraction"] < 0.5
    # The naive everything-tunneled system pushes nearly everything
    # through the home agent, at a wide-area byte premium.
    assert tunneled["mobile_ip_fraction"] > 2 * adaptive["mobile_ip_fraction"]
    assert tunneled["wide_area_bytes"] > adaptive["wide_area_bytes"]
    # All three complete the web workload (reloads cover the move)...
    for row in rows:
        assert row["pages_ok"] == FETCHES
    # ...but only the Mobile IP configurations keep the telnet alive.
    assert adaptive["telnet_survived"] and adaptive["telnet_echoes"] == 12
    assert tunneled["telnet_survived"]
    assert not plain["telnet_survived"]
