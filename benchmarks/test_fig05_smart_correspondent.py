"""Figure 5 — A Smart Correspondent Host.

Reproduces: a mobile-aware correspondent learns the care-of address
(via the home agent's ICMP advisory, §3.2) and "performs the
encapsulation itself, sending the packet directly to the mobile host.
This avoids the overhead of indirect delivery."  The table shows the
per-packet delivery latency of a stream: the first packet triangles,
the rest go In-DE; a conventional correspondent triangles forever.
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.core import ProbeStrategy
from repro.mobileip import Awareness

STREAM = 6


def run_stream(awareness: Awareness, seed: int):
    scenario = build_scenario(
        seed=seed,
        backbone_size=7,
        ch_attach=5,                 # nearby correspondent: Figure 4's pain
        ch_awareness=awareness,
        notify_correspondents=True,
        visited_filtering=False,
        strategy=ProbeStrategy.CONSERVATIVE_FIRST,
    )
    sim = scenario.sim
    latencies = []
    sent_at = {}
    sock = scenario.mh.stack.udp_socket(7000)
    sock.on_receive(
        lambda d, s, ip, p: latencies.append(sim.now - sent_at[d])
    )
    ch_sock = scenario.ch.stack.udp_socket()

    def send(index):
        sent_at[index] = sim.now
        ch_sock.sendto(index, 100, MH_HOME_ADDRESS, 7000)

    for index in range(STREAM):
        sim.events.schedule(index * 1.0, send, index)
    sim.run_for(60)
    return {
        "latencies": latencies,
        "tunneled_by_ha": scenario.ha.packets_tunneled,
        "in_de": scenario.ch.direct_tunneled,
        "advisories": scenario.ha.advisories_sent,
    }


def run_figure_5():
    return {
        Awareness.CONVENTIONAL: run_stream(Awareness.CONVENTIONAL, 1005),
        Awareness.MOBILE_AWARE: run_stream(Awareness.MOBILE_AWARE, 1005),
    }


def test_fig05_smart_correspondent(benchmark, reporter):
    results = benchmark(run_figure_5)
    table = TextTable(
        "Figure 5: Smart correspondent host (nearby CH, per-packet latency)",
        ["correspondent", "packet#", "latency (s)", "route"],
    )
    for awareness, r in results.items():
        for index, latency in enumerate(r["latencies"]):
            route = "In-IE via HA"
            if awareness is Awareness.MOBILE_AWARE and index > 0:
                route = "In-DE direct"
            table.add_row(awareness.value, index, latency, route)
    reporter.table(table)

    conventional = results[Awareness.CONVENTIONAL]
    smart = results[Awareness.MOBILE_AWARE]
    assert len(conventional["latencies"]) == STREAM
    assert len(smart["latencies"]) == STREAM
    # Conventional CH: every packet triangles; smart CH: only the first.
    assert conventional["tunneled_by_ha"] == STREAM
    assert smart["tunneled_by_ha"] == 1
    assert smart["in_de"] == STREAM - 1
    assert smart["advisories"] == 1
    # Steady-state improvement: later packets are much faster direct.
    assert smart["latencies"][-1] < conventional["latencies"][-1] / 2
