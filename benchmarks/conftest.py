"""Benchmark harness plumbing.

Every benchmark regenerates one figure or section-level claim of the
paper and reports its rows through the ``reporter`` fixture.  Collected
tables are printed in the terminal summary (outside pytest's capture),
so ``pytest benchmarks/ --benchmark-only`` shows both pytest-benchmark
timings and the paper-style result tables.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.analysis.reporting import TextTable

_TABLES: List[str] = []


class Reporter:
    """Collects rendered tables for the end-of-run summary."""

    def table(self, table: TextTable) -> None:
        _TABLES.append(table.render())

    def text(self, text: str) -> None:
        _TABLES.append(text)


@pytest.fixture
def reporter() -> Reporter:
    return Reporter()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper-reproduction result tables")
    for rendered in _TABLES:
        terminalreporter.write_line("")
        for line in rendered.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
