"""Figure 2 — Problem with Source Address Filtering.

Reproduces: with the visited domain's boundary router doing §3.1
source-address checks, the mobile host's Out-DH replies are discarded
and "never reach the correspondent host"; with a permissive boundary
the same packets arrive.  The table is a 2x2 of (filtering, mode) ->
delivery ratio.
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.core import ProbeStrategy
from repro.core.modes import AddressPlan, OutMode, build_outgoing
from repro.mobileip import Awareness
from repro.netsim.packet import IPProto
from repro.transport import UDPDatagram

PACKETS = 10


def run_cell(filtering: bool, mode: OutMode, seed: int):
    """Send PACKETS home-address datagrams MH -> CH in a fixed mode."""
    scenario = build_scenario(
        seed=seed,
        ch_awareness=Awareness.CONVENTIONAL,
        visited_filtering=filtering,
        strategy=ProbeStrategy.AGGRESSIVE_FIRST,
    )
    plan = AddressPlan(MH_HOME_ADDRESS, scenario.mh.care_of,
                       scenario.ha_ip, scenario.ch_ip)
    received = []
    sock = scenario.ch.stack.udp_socket(6000)
    sock.on_receive(lambda d, s, ip, p: received.append(d))
    for index in range(PACKETS):
        datagram = UDPDatagram(6001, 6000, index, 100)
        packet = build_outgoing(mode, plan, payload=datagram,
                                payload_size=datagram.size, proto=IPProto.UDP)
        scenario.mh.ip_send(packet, bypass_overrides=True)
    scenario.sim.run_for(30)
    drops = sum(
        count for reason, count in scenario.sim.trace.drops_by_reason.items()
        if "source-address-filter" in reason or "transit" in reason
    )
    return len(received) / PACKETS, drops


def run_figure_2():
    results = {}
    for filtering in (True, False):
        for mode in (OutMode.OUT_DH, OutMode.OUT_IE):
            results[(filtering, mode)] = run_cell(filtering, mode, seed=1002)
    return results


def test_fig02_source_filtering(benchmark, reporter):
    results = benchmark(run_figure_2)
    table = TextTable(
        "Figure 2: Source-address filtering vs. Out-DH",
        ["visited boundary", "outgoing mode", "delivery ratio", "filter drops"],
    )
    for (filtering, mode), (ratio, drops) in results.items():
        table.add_row(
            "filtering" if filtering else "permissive", mode.value, ratio, drops
        )
    reporter.table(table)

    # The paper's claims: Out-DH dies under filtering, works without;
    # Out-IE (Figure 3's cure) is immune either way.
    assert results[(True, OutMode.OUT_DH)][0] == 0.0
    assert results[(False, OutMode.OUT_DH)][0] == 1.0
    assert results[(True, OutMode.OUT_IE)][0] == 1.0
    assert results[(False, OutMode.OUT_IE)][0] == 1.0
    assert results[(True, OutMode.OUT_DH)][1] >= PACKETS
