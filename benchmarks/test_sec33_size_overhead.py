"""§3.3 — Minimize Size: encapsulation bytes and the fragmentation cliff.

Reproduces two claims:

1. "Encapsulation typically adds 20 bytes to the size of the packet in
   IPv4" — and GRE (RFC 1702) / Minimal Encapsulation (Per95) trade
   that differently (24 / 8-12 bytes).
2. "If the addition of the extra 20 bytes makes the packet exceed the
   IP maximum transmission unit for a particular link, then the packet
   will be fragmented, doubling the packet count."

The table sweeps payload size across the MTU boundary for every
scheme and reports wire bytes and on-link packet counts, measured by
actually sending the packets across a simulated Ethernet.
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.core.modes import AddressPlan, OutMode, build_outgoing
from repro.mobileip import Awareness
from repro.netsim import EncapScheme
from repro.netsim.packet import IPProto
from repro.transport import UDPDatagram
from repro.transport.udp import UDP_HEADER_SIZE

# Payload sizes chosen so the unencapsulated packet fits the 1500-byte
# MTU exactly (1472+8+20=1500) or sits safely below/above the cliff.
PAYLOADS = [256, 1024, 1472 - UDP_HEADER_SIZE + 8]   # last = 1472 data bytes
SCHEMES = [None, EncapScheme.MINIMAL, EncapScheme.IPIP, EncapScheme.GRE]


def run_case(scheme, payload, seed):
    scenario = build_scenario(seed=seed, ch_awareness=Awareness.DECAP_CAPABLE,
                              visited_filtering=False)
    plan = AddressPlan(MH_HOME_ADDRESS, scenario.mh.care_of,
                       scenario.ha_ip, scenario.ch_ip)
    received = []
    sock = scenario.ch.stack.udp_socket(6000)
    sock.on_receive(lambda d, s, ip, p: received.append(d))

    datagram = UDPDatagram(6001, 6000, "bulk", payload)
    if scheme is None:
        packet = build_outgoing(OutMode.OUT_DH, plan, payload=datagram,
                                payload_size=datagram.size, proto=IPProto.UDP)
    else:
        packet = build_outgoing(OutMode.OUT_DE, plan, payload=datagram,
                                payload_size=datagram.size, proto=IPProto.UDP,
                                scheme=scheme)
    lan = scenario.sim.segments[scenario.visited.lan_segment_name]
    frames_before = lan.frames_carried
    scenario.mh.ip_send(packet, bypass_overrides=True)
    scenario.sim.run_for(20)
    # Frames on the first hop minus ARP chatter (count only IP frames by
    # measuring with warm ARP: the scenario's registration already
    # resolved the gateway).
    ip_frames = lan.frames_carried - frames_before
    return {
        "wire_size": packet.wire_size,
        "frames": ip_frames,
        "delivered": bool(received),
    }


def run_sweep():
    rows = []
    for payload in PAYLOADS:
        for scheme in SCHEMES:
            case = run_case(scheme, payload, seed=3301)
            rows.append({
                "payload": payload,
                "scheme": scheme.value if scheme else "none (Out-DH)",
                **case,
            })
    return rows


def test_sec33_size_overhead(benchmark, reporter):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = TextTable(
        "§3.3: Encapsulation size overhead and fragmentation (MTU 1500)",
        ["UDP payload (B)", "scheme", "wire bytes", "first-hop IP packets",
         "delivered"],
    )
    for row in rows:
        table.add_row(row["payload"], row["scheme"], row["wire_size"],
                      row["frames"], row["delivered"])
    reporter.table(table)

    by_key = {(row["payload"], row["scheme"]): row for row in rows}
    small, big = PAYLOADS[0], PAYLOADS[-1]

    # Everything is delivered, fragmented or not.
    assert all(row["delivered"] for row in rows)
    # Declared overheads hold on the wire.
    base = by_key[(small, "none (Out-DH)")]["wire_size"]
    assert by_key[(small, "ipip")]["wire_size"] == base + 20
    assert by_key[(small, "gre")]["wire_size"] == base + 24
    assert by_key[(small, "minimal")]["wire_size"] == base + 12
    # Below the cliff: one packet each.
    assert by_key[(small, "ipip")]["frames"] == 1
    # At the cliff: the plain packet still fits in one frame...
    assert by_key[(big, "none (Out-DH)")]["frames"] == 1
    # ...but every encapsulation doubles the packet count (§3.3).
    for scheme in ("minimal", "ipip", "gre"):
        assert by_key[(big, scheme)]["frames"] == 2, scheme
