"""Ablation — the §7.1.2 detector on a lossy (wireless) link.

The paper's feedback proposal has a failure mode it does not discuss:
retransmissions can be caused by *media loss*, not by a broken delivery
mode.  A mobile host on a lossy wireless LAN sees retransmissions even
when Out-DH works perfectly; a detector threshold that is too low then
demotes spuriously, abandoning the efficient mode and paying the
tunnel's path length for nothing.

The ablation sweeps (loss rate x threshold) for an aggressive-first
host on a permissive path and reports spurious demotions and the final
mode.  The shape: higher loss needs a higher threshold to keep the
efficient mode; a threshold of ~4 tolerates 10% loss.
"""

from repro.analysis import TextTable, build_scenario
from repro.core import OutMode, ProbeStrategy
from repro.mobileip import Awareness

LOSS_RATES = [0.0, 0.05, 0.15]
THRESHOLDS = [2, 4, 8]
MESSAGES = 15


def run_case(loss: float, threshold: int, seed: int):
    scenario = build_scenario(seed=seed,
                              strategy=ProbeStrategy.AGGRESSIVE_FIRST,
                              visited_filtering=False,
                              ch_awareness=Awareness.DECAP_CAPABLE)
    scenario.mh.engine.detector.threshold = threshold
    # The visited LAN is the wireless access network.
    scenario.sim.segments[scenario.visited.lan_segment_name].loss_rate = loss
    sim = scenario.sim
    scenario.ch.stack.listen(
        6000,
        lambda conn: setattr(conn, "on_data",
                             lambda d, s: conn.send(20, ("ack", d))))
    conn = scenario.mh.stack.connect(scenario.ch_ip, 6000)
    got = []
    conn.on_data = lambda d, s: got.append(d)

    def tick(count=[0]):
        if count[0] >= MESSAGES or not conn.is_open:
            return
        count[0] += 1
        conn.send(50, count[0])
        sim.events.schedule(2.0, tick)

    conn.on_established = tick
    sim.run_for(300)
    record = scenario.mh.engine.cache.records.get(scenario.ch_ip)
    return {
        "echoes": len(got),
        "demotions": record.suspicions if record else 0,
        "final": record.current.value if record else "-",
        "retransmissions": conn.retransmissions,
    }


def run_ablation():
    rows = []
    for loss in LOSS_RATES:
        for threshold in THRESHOLDS:
            rows.append(((loss, threshold),
                         run_case(loss, threshold, 8601)))
    return rows


def test_abl_lossy_feedback(benchmark, reporter):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = TextTable(
        "Ablation: detector threshold on a lossy wireless LAN "
        "(permissive path; demotions here are all spurious)",
        ["LAN loss rate", "threshold", "echoes", "retransmissions",
         "spurious demotions", "final mode"],
    )
    for (loss, threshold), r in rows:
        table.add_row(loss, threshold, r["echoes"], r["retransmissions"],
                      r["demotions"], r["final"])
    reporter.table(table)

    results = dict(rows)
    # No loss: no spurious demotions at any threshold.
    for threshold in THRESHOLDS:
        assert results[(0.0, threshold)]["demotions"] == 0
        assert results[(0.0, threshold)]["final"] == OutMode.OUT_DH.value
    # At any loss rate, a high-enough threshold keeps the efficient
    # mode, and spurious demotions never increase with the threshold.
    for loss in LOSS_RATES:
        demotions = [results[(loss, t)]["demotions"] for t in THRESHOLDS]
        assert demotions == sorted(demotions, reverse=True)
        assert results[(loss, THRESHOLDS[-1])]["final"] == OutMode.OUT_DH.value
    # The interesting cells: loss with a hair-trigger detector abandons
    # a perfectly working Out-DH at least once (which loss rate trips
    # it depends on exactly which frames the seeded RNG drops).
    assert any(results[(loss, 2)]["demotions"] >= 1
               for loss in LOSS_RATES if loss > 0)
