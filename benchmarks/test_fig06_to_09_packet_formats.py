"""Figures 6-9 — the four packet-format diagrams.

These figures are address tables; the benchmark regenerates each one
from the implementation by building every mode's packet and printing
the header fields observed on the wire, then cross-checks the observed
addresses against the figure.  (Sizes are included because §3.3 uses
these same formats for its overhead arithmetic.)
"""

from repro.analysis import TextTable
from repro.core.modes import (
    AddressPlan,
    InMode,
    OutMode,
    build_incoming_direct,
    build_outgoing,
    classify_incoming,
    classify_outgoing,
)
from repro.netsim import IPAddress
from repro.netsim.packet import IPProto

PLAN = AddressPlan(
    home=IPAddress("10.1.0.10"),        # MH
    care_of=IPAddress("10.2.0.2"),      # COA
    home_agent=IPAddress("10.1.0.1"),   # HA
    correspondent=IPAddress("10.3.0.2"),  # CH
)
PAYLOAD = 100


def describe(packet):
    if packet.is_encapsulated:
        inner = packet.innermost
        return (str(packet.src), str(packet.dst),
                str(inner.src), str(inner.dst), packet.wire_size)
    return ("-", "-", str(packet.src), str(packet.dst), packet.wire_size)


def run_formats():
    out_rows = []
    for mode in OutMode:
        packet = build_outgoing(mode, PLAN, payload_size=PAYLOAD,
                                proto=IPProto.UDP)
        assert classify_outgoing(packet, PLAN) is mode
        out_rows.append((mode.value,) + describe(packet))
    in_rows = []
    for mode in InMode:
        packet = build_incoming_direct(mode, PLAN, payload_size=PAYLOAD,
                                       proto=IPProto.UDP)
        assert classify_incoming(packet, PLAN) is mode
        in_rows.append((mode.value,) + describe(packet))
    return out_rows, in_rows


def test_fig06_to_09_packet_formats(benchmark, reporter):
    out_rows, in_rows = benchmark(run_formats)

    out_table = TextTable(
        "Figures 6/7: Outgoing packet formats (s/d = outer, S/D = inner)",
        ["mode", "s (outer src)", "d (outer dst)", "S", "D", "wire bytes"],
    )
    for row in out_rows:
        out_table.add_row(*row)
    reporter.table(out_table)

    in_table = TextTable(
        "Figures 8/9: Incoming packet formats (s/d = outer, S/D = inner)",
        ["mode", "s (outer src)", "d (outer dst)", "S", "D", "wire bytes"],
    )
    for row in in_rows:
        in_table.add_row(*row)
    reporter.table(in_table)

    rows = {row[0]: row for row in out_rows + in_rows}
    mh, coa = str(PLAN.home), str(PLAN.care_of)
    ha, ch = str(PLAN.home_agent), str(PLAN.correspondent)

    # Figure 6: unencapsulated outgoing, S in {MH, COA}, D = CH.
    assert rows["Out-DH"][1:5] == ("-", "-", mh, ch)
    assert rows["Out-DT"][1:5] == ("-", "-", coa, ch)
    # Figure 7: s = COA always; d in {HA, CH}; S = MH; D = CH.
    assert rows["Out-IE"][1:5] == (coa, ha, mh, ch)
    assert rows["Out-DE"][1:5] == (coa, ch, mh, ch)
    # Figure 8: unencapsulated incoming, D in {COA, MH-on-segment}.
    assert rows["In-DT"][1:5] == ("-", "-", ch, coa)
    assert rows["In-DH"][1:5] == ("-", "-", ch, mh)
    # Figure 9: d = COA always; s in {HA, CH}; S = CH; D = MH.
    assert rows["In-IE"][1:5] == (ha, coa, ch, mh)
    assert rows["In-DE"][1:5] == (ch, coa, ch, mh)
    # §3.3: encapsulated forms carry exactly 20 extra bytes (IP-in-IP).
    for enc, plain in (("Out-IE", "Out-DH"), ("In-IE", "In-DH")):
        assert rows[enc][5] == rows[plain][5] + 20
