"""§1 — "the same techniques and optimizations apply equally well if
both hosts are mobile."

Two mobile hosts, both away from home, converse three ways:

* both conventional: the double triangle — each direction transits the
  *other* host's home agent (every packet crosses the backbone twice);
* one-sided optimization: A knows B's binding (In-DE toward B) but not
  vice versa;
* both smart: each knows the other's binding — direct tunnels both
  ways, no home agent touched.

The table reports round-trip latency and home-agent workload per
arrangement.
"""

from repro.analysis import TextTable
from repro.core import ProbeStrategy
from repro.mobileip import HomeAgent, MobileHost
from repro.netsim import Internet, IPAddress, Simulator

HOME_A = IPAddress("10.1.0.10")
HOME_B = IPAddress("10.7.0.10")


def build_world(seed: int):
    sim = Simulator(seed=seed)
    net = Internet(sim, backbone_size=6)
    home_a = net.add_domain("home-a", "10.1.0.0/16", attach_at=0)
    home_b = net.add_domain("home-b", "10.7.0.0/16", attach_at=1)
    net.add_domain("visit-a", "10.2.0.0/16", attach_at=4)
    net.add_domain("visit-b", "10.8.0.0/16", attach_at=5)

    ha_a = HomeAgent("ha-a", sim, home_network=home_a.prefix)
    ha_a_ip = net.add_host("home-a", ha_a)
    ha_b = HomeAgent("ha-b", sim, home_network=home_b.prefix)
    ha_b_ip = net.add_host("home-b", ha_b)

    mh_a = MobileHost("mh-a", sim, home_address=HOME_A,
                      home_network=home_a.prefix, home_agent_address=ha_a_ip,
                      strategy=ProbeStrategy.CONSERVATIVE_FIRST)
    mh_a.attach_home(net, "home-a")
    mh_b = MobileHost("mh-b", sim, home_address=HOME_B,
                      home_network=home_b.prefix, home_agent_address=ha_b_ip,
                      strategy=ProbeStrategy.CONSERVATIVE_FIRST)
    mh_b.attach_home(net, "home-b")
    mh_a.move_to(net, "visit-a")
    mh_b.move_to(net, "visit-b")
    sim.run(until=sim.now + 5)
    return sim, ha_a, ha_b, mh_a, mh_b


def measure_rtt(sim, mh_a, mh_b):
    sock_b = mh_b.stack.udp_socket(7000)
    sock_b.on_receive(
        lambda d, s, ip, p: sock_b.sendto("echo", s, ip, p,
                                          src_override=HOME_B))
    sock_a = mh_a.stack.udp_socket()
    times = []
    start = {}
    # B echoes back to A's sending port, so listen on that same socket.
    sock_a.on_receive(lambda d, s, ip, p: times.append(sim.now - start["t"]))

    def probe():
        start["t"] = sim.now
        sock_a.sendto("ping", 100, HOME_B, 7000, src_override=HOME_A)

    probe()            # warm-up (ARP along every leg)
    sim.run(until=sim.now + 20)
    times.clear()
    probe()
    sim.run(until=sim.now + 20)
    return times[0] if times else None


def run_arrangements():
    rows = []

    # Both conventional: double triangle.
    sim, ha_a, ha_b, mh_a, mh_b = build_world(9101)
    rtt = measure_rtt(sim, mh_a, mh_b)
    rows.append(("both conventional (double triangle)", rtt,
                 ha_a.packets_tunneled + ha_b.packets_tunneled))

    # One-sided: A knows B's binding (learned as mobile-aware hosts do).
    sim, ha_a, ha_b, mh_a, mh_b = build_world(9102)
    mh_a.engine.learn(HOME_B, mobile_aware=True)
    # A binding cache on the MH side is the CH machinery; emulate the
    # §5 In-DE sender by teaching A's engine that Out-DE works and
    # giving it B's care-of as the correspondent "address" via a CH
    # binding-style shortcut: tunnel directly to B's care-of.
    # The clean way within the implementation: A sends Out-DE to B's
    # *home* address; the outer goes to B directly only if A knows the
    # care-of — which is CorrespondentHost behaviour.  Mobile hosts are
    # also correspondents (§1), so reuse that: install a route override
    # equivalent by pointing A's tunnel at the care-of address.
    from repro.netsim.node import VirtualRoute

    def a_override(packet):
        if packet.dst == HOME_B and packet.src == HOME_A:
            return VirtualRoute(
                handler=lambda p: mh_a.tunnel.send_encapsulated(
                    p, mh_a.care_of, mh_b.care_of),
                name="In-DE-toward-B",
            )
        return None

    mh_a.route_overrides.insert(0, a_override)
    rtt = measure_rtt(sim, mh_a, mh_b)
    rows.append(("A knows B's binding (one-sided)", rtt,
                 ha_a.packets_tunneled + ha_b.packets_tunneled))

    # Both smart: each tunnels directly to the other's care-of address.
    sim, ha_a, ha_b, mh_a, mh_b = build_world(9103)

    def override_for(sender, peer_home, peer_coa, own_home):
        def override(packet):
            if packet.dst == peer_home and packet.src == own_home:
                return VirtualRoute(
                    handler=lambda p: sender.tunnel.send_encapsulated(
                        p, sender.care_of, peer_coa),
                    name="In-DE-direct",
                )
            return None
        return override

    mh_a.route_overrides.insert(
        0, override_for(mh_a, HOME_B, mh_b.care_of, HOME_A))
    mh_b.route_overrides.insert(
        0, override_for(mh_b, HOME_A, mh_a.care_of, HOME_B))
    rtt = measure_rtt(sim, mh_a, mh_b)
    rows.append(("both know bindings (direct tunnels)", rtt,
                 ha_a.packets_tunneled + ha_b.packets_tunneled))
    return rows


def test_sec1_both_mobile(benchmark, reporter):
    rows = benchmark.pedantic(run_arrangements, rounds=1, iterations=1)
    table = TextTable(
        "§1: Both hosts mobile — RTT per optimization level",
        ["arrangement", "RTT (s)", "HA-tunneled packets (both agents)"],
    )
    for label, rtt, tunneled in rows:
        table.add_row(label, rtt, tunneled)
    reporter.table(table)

    double, one_sided, direct = rows
    assert all(rtt is not None for _label, rtt, _t in rows)
    # Each optimization level strictly improves the round trip.
    assert direct[1] < one_sided[1] < double[1]
    # The fully-optimized arrangement bypasses both home agents for the
    # measured probe (tunneled counts include only the warm-up).
    assert direct[2] <= one_sided[2] <= double[2]
