"""Ablation — the §7.1.2 retransmission-detector threshold.

The paper proposes the original/retransmission signal but does not fix
a sensitivity.  This ablation sweeps the detector threshold for an
aggressive-first host on a filtering path and measures how long the
ladder takes to reach a working mode and what the connection pays for
it (retransmissions), plus a control on a *lossless, permissive* path
to confirm low thresholds cause no spurious demotions (our simulator
drops only by policy, so any demotion there would be a false positive).
"""

from repro.analysis import TextTable, build_scenario
from repro.core import OutMode, ProbeStrategy
from repro.mobileip import Awareness

THRESHOLDS = [1, 2, 4]
MESSAGES = 8


def run_threshold(threshold: int, filtering: bool, seed: int):
    scenario = build_scenario(seed=seed,
                              strategy=ProbeStrategy.AGGRESSIVE_FIRST,
                              visited_filtering=filtering,
                              ch_awareness=Awareness.DECAP_CAPABLE)
    scenario.mh.engine.detector.threshold = threshold
    sim = scenario.sim
    scenario.ch.stack.listen(
        6000,
        lambda conn: setattr(conn, "on_data",
                             lambda d, s: conn.send(20, ("ack", d))))
    conn = scenario.mh.stack.connect(scenario.ch_ip, 6000)
    first = {}
    got = []
    conn.on_data = lambda d, s: (got.append(d), first.setdefault("t", sim.now))
    start = sim.now

    def tick(count=[0]):
        if count[0] >= MESSAGES or not conn.is_open:
            return
        count[0] += 1
        conn.send(50, count[0])
        sim.events.schedule(2.0, tick)

    conn.on_established = tick
    sim.run_for(240)
    record = scenario.mh.engine.cache.records.get(scenario.ch_ip)
    return {
        "echoes": len(got),
        "adapt_time": first.get("t", float("inf")) - start,
        "retransmissions": conn.retransmissions,
        "mode_changes": record.mode_changes if record else 0,
        "final": record.current.value if record else "-",
    }


def run_ablation():
    rows = []
    for filtering in (True, False):
        for threshold in THRESHOLDS:
            rows.append(((threshold, filtering),
                         run_threshold(threshold, filtering, 8301)))
    return rows


def test_abl_feedback_threshold(benchmark, reporter):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = TextTable(
        "Ablation: retransmission-detector threshold (aggressive-first)",
        ["threshold", "filtered", "echoes", "time to 1st delivery (s)",
         "retransmissions", "mode changes", "final mode"],
    )
    for (threshold, filtering), r in rows:
        table.add_row(threshold, filtering, r["echoes"], r["adapt_time"],
                      r["retransmissions"], r["mode_changes"], r["final"])
    reporter.table(table)

    results = dict(rows)
    # Filtered path: every threshold eventually converses; lower
    # thresholds adapt no slower than higher ones.
    for threshold in THRESHOLDS:
        assert results[(threshold, True)]["echoes"] == MESSAGES
    assert (results[(1, True)]["adapt_time"]
            <= results[(2, True)]["adapt_time"]
            <= results[(4, True)]["adapt_time"])
    # Permissive path: no demotions at any threshold (no false alarms
    # on a loss-free path, even at threshold 1).
    for threshold in THRESHOLDS:
        r = results[(threshold, False)]
        assert r["mode_changes"] == 0
        assert r["final"] == OutMode.OUT_DH.value
