"""§3.2 — Minimize Latency: RTT of every delivery arrangement.

Reproduces the section's ordering argument with a full round-trip
latency table over the delivery arrangements available to one
conversation, for a *nearby* and a *far* correspondent:

* nearby CH: In-DH < In-DE < In-IE, with a large In-IE penalty
  (Figure 4's situation);
* far CH: the In-IE penalty is small — "the extra distance added by
  indirect delivery is small compared to the distance that the packets
  would travel anyway" (Figures 2/3's situation).
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.core import ProbeStrategy
from repro.mobileip import Awareness

BACKBONE = 7


def measure_rtt(scenario, reply_src=MH_HOME_ADDRESS):
    sim = scenario.sim
    mh_sock = scenario.mh.stack.udp_socket(7000)
    mh_sock.on_receive(
        lambda d, s, ip, p: mh_sock.sendto("echo", s, ip, p,
                                           src_override=reply_src)
    )
    ch_sock = scenario.ch.stack.udp_socket()
    times = []
    start = {}
    ch_sock.on_receive(lambda d, s, ip, p: times.append(sim.now - start["t"]))

    def probe():
        start["t"] = sim.now
        ch_sock.sendto("ping", 100, MH_HOME_ADDRESS, 7000)

    # Warm-up (ARP, caches), then measure.
    probe()
    sim.run_for(10)
    times.clear()
    probe()
    sim.run_for(10)
    return times[0] if times else None


def arrangements(ch_attach, same_segment, seed):
    rows = []

    def scenario_for(awareness, strategy):
        return build_scenario(
            seed=seed, backbone_size=BACKBONE, ch_attach=ch_attach,
            ch_in_visited_lan=same_segment, ch_awareness=awareness,
            visited_filtering=False, strategy=strategy,
        )

    # In-IE / Out-IE — most conservative.
    conservative = scenario_for(Awareness.CONVENTIONAL,
                                ProbeStrategy.CONSERVATIVE_FIRST)
    conservative.mh.engine.cache.upgrade_after = 10**9  # stay at Out-IE
    rows.append(("In-IE/Out-IE", measure_rtt(conservative)))

    # In-IE / Out-DH — direct replies.
    half = scenario_for(Awareness.CONVENTIONAL, ProbeStrategy.AGGRESSIVE_FIRST)
    rows.append(("In-IE/Out-DH", measure_rtt(half)))

    # Smart correspondent with a binding.  Off-segment it tunnels
    # directly (In-DE); on the mobile host's own segment it prefers the
    # one-hop In-DH automatically (§7.2), so the arrangement label
    # follows the wire behaviour.
    smart = scenario_for(Awareness.MOBILE_AWARE, ProbeStrategy.AGGRESSIVE_FIRST)
    smart.ch.learn_binding(MH_HOME_ADDRESS, smart.mh.care_of, 600.0)
    label = "In-DH/Out-DH" if same_segment else "In-DE/Out-DH"
    rows.append((label, measure_rtt(smart)))
    return rows


def run_sweep():
    return {
        "far CH (attach 0, at home's end)": arrangements(0, False, 3201),
        "near CH (attach 5, next to visited)": arrangements(5, False, 3202),
        "same segment CH": arrangements(0, True, 3203),
    }


def test_sec32_latency_sweep(benchmark, reporter):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = TextTable(
        "§3.2: Round-trip latency by delivery arrangement and CH position",
        ["correspondent position", "arrangement", "RTT (s)"],
    )
    for position, rows in results.items():
        for arrangement, rtt in rows:
            table.add_row(position, arrangement, rtt)
    reporter.table(table)

    def rtts(position):
        return dict(results[position])

    near = rtts("near CH (attach 5, next to visited)")
    far = rtts("far CH (attach 0, at home's end)")
    same = rtts("same segment CH")

    # Ordering for the nearby correspondent: each step helps a lot.
    assert near["In-DE/Out-DH"] < near["In-IE/Out-DH"] < near["In-IE/Out-IE"]
    # Same-segment is the fastest arrangement of all.
    assert same["In-DH/Out-DH"] < near["In-DE/Out-DH"]
    assert same["In-DH/Out-DH"] < same["In-IE/Out-DH"] / 50
    # For the far correspondent the In-IE penalty is modest (<60%)...
    far_penalty = far["In-IE/Out-IE"] / far["In-DE/Out-DH"]
    assert far_penalty < 1.6
    # ...while for the near correspondent it is severe (>3x).
    near_penalty = near["In-IE/Out-IE"] / near["In-DE/Out-DH"]
    assert near_penalty > 3.0
