"""Ablation — correspondent binding lifetime vs. mobile-host movement.

The §3.2 advisory carries a lifetime; the trade-off it encodes:

* a long lifetime maximizes In-DE traffic but keeps tunneling to a
  *stale* care-of address after the mobile host moves (those packets
  are lost until the binding expires and the CH falls back to the
  home agent);
* a short lifetime loses little on movement but triangles more often.

The ablation streams datagrams through one mid-stream move for several
lifetimes and reports delivered / lost-to-stale-binding / triangled
counts.  (The home agent re-advises after the binding expires, so long
lifetimes lose a contiguous window of packets.)
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.mobileip import Awareness

LIFETIMES = [2.0, 8.0, 30.0]
STREAM = 20
INTERVAL = 1.0
MOVE_AT = 6.5


def run_lifetime(lifetime: float, seed: int):
    scenario = build_scenario(seed=seed, ch_awareness=Awareness.MOBILE_AWARE,
                              notify_correspondents=True)
    scenario.ha.advisory_lifetime = lifetime
    scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3)
    sim = scenario.sim

    got = []
    mh_sock = scenario.mh.stack.udp_socket(7000)
    mh_sock.on_receive(lambda d, s, ip, p: got.append(d))
    ch_sock = scenario.ch.stack.udp_socket()

    for index in range(STREAM):
        sim.events.schedule(
            index * INTERVAL,
            lambda i=index: ch_sock.sendto(i, 100, MH_HOME_ADDRESS, 7000),
        )
    sim.events.schedule(MOVE_AT, lambda: scenario.mh.move_to(scenario.net,
                                                             "visited2"))
    sim.run_for(STREAM * INTERVAL + 30)
    return {
        "delivered": len(got),
        "lost": STREAM - len(got),
        "in_de": scenario.ch.direct_tunneled,
        "triangled": scenario.ha.packets_tunneled,
    }


def run_ablation():
    return {lifetime: run_lifetime(lifetime, 8401) for lifetime in LIFETIMES}


def test_abl_binding_lifetime(benchmark, reporter):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = TextTable(
        f"Ablation: binding lifetime ({STREAM} packets @ {INTERVAL}s, "
        f"move at t={MOVE_AT}s)",
        ["binding lifetime (s)", "delivered", "lost to stale binding",
         "sent In-DE", "sent via HA"],
    )
    for lifetime, r in results.items():
        table.add_row(lifetime, r["delivered"], r["lost"], r["in_de"],
                      r["triangled"])
    reporter.table(table)

    short, medium, long_ = (results[l] for l in LIFETIMES)
    # Short lifetimes lose no more than longer ones on the move...
    assert short["lost"] <= medium["lost"] <= long_["lost"]
    # ...but triangle more when nothing is moving.
    assert short["triangled"] >= medium["triangled"] >= long_["triangled"]
    # Longer lifetimes maximize direct traffic.
    assert long_["in_de"] >= medium["in_de"] >= short["in_de"]
    # Everyone recovers eventually: losses are bounded by the stale
    # window (lifetime / send interval).
    for lifetime in LIFETIMES:
        assert results[lifetime]["lost"] <= lifetime / INTERVAL + 2
