"""Ablation — encapsulation scheme choice (§2's overhead discussion).

The paper notes that the tunneling overhead "can be minimized by use of
Generic Routing Encapsulation or Minimal Encapsulation."  This ablation
runs the same bidirectionally-tunneled conversation (privacy mode: all
traffic Out-IE/In-IE) under each scheme and reports total wide-area
bytes — the scheme is a pure byte-cost knob; delivery and latency
ordering must be unaffected.
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.mobileip import Awareness
from repro.netsim import EncapScheme

MESSAGES = 20
PAYLOAD = 400


def backbone_bytes(scenario):
    return sum(
        count for name, count in scenario.sim.trace.bytes_by_link.items()
        if name.startswith("p2p") or name.startswith("uplink")
    )


def run_scheme(scheme: EncapScheme, seed: int):
    scenario = build_scenario(seed=seed, ch_awareness=Awareness.CONVENTIONAL,
                              scheme=scheme, privacy=True)
    got = []
    sock = scenario.ch.stack.udp_socket(6000)
    sock.on_receive(lambda d, s, ip, p: got.append(d))
    mh_sock = scenario.mh.stack.udp_socket()
    baseline = backbone_bytes(scenario)
    for index in range(MESSAGES):
        scenario.sim.events.schedule(
            index * 0.2,
            lambda i=index: mh_sock.sendto(i, PAYLOAD, scenario.ch_ip, 6000,
                                           src_override=MH_HOME_ADDRESS),
        )
    scenario.sim.run_for(30)
    return {
        "delivered": len(got),
        "bytes": backbone_bytes(scenario) - baseline,
        "tunneled": scenario.mh.tunnel.encapsulated_count,
    }


def run_ablation():
    return {scheme: run_scheme(scheme, 8101) for scheme in EncapScheme}


def test_abl_encap_schemes(benchmark, reporter):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = TextTable(
        f"Ablation: encapsulation scheme, {MESSAGES} x {PAYLOAD}B Out-IE "
        "messages",
        ["scheme", "delivered", "wide-area bytes", "bytes vs minimal"],
    )
    base = results[EncapScheme.MINIMAL]["bytes"]
    for scheme, r in results.items():
        table.add_row(scheme.value, r["delivered"], r["bytes"],
                      f"+{r['bytes'] - base}")
    reporter.table(table)

    for r in results.values():
        assert r["delivered"] == MESSAGES
        assert r["tunneled"] == MESSAGES
    # Byte ordering: minimal < ipip < gre.  The per-packet overhead
    # difference (12 vs 20 vs 24 B on the tunneled MH->HA leg) is paid
    # once per wide-area link the tunnel crosses, so the deltas must be
    # in the exact ratio of the overhead differences: (20-12) : (24-20)
    # = 2 : 1.
    minimal = results[EncapScheme.MINIMAL]["bytes"]
    ipip = results[EncapScheme.IPIP]["bytes"]
    gre = results[EncapScheme.GRE]["bytes"]
    assert minimal < ipip < gre
    assert (ipip - minimal) == 2 * (gre - ipip)
    assert (ipip - minimal) % (MESSAGES * 8) == 0
