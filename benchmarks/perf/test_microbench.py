"""Substrate micro-benchmarks (pytest-benchmark wrappers).

The same workloads as ``python -m repro.bench`` (see
:mod:`repro.bench`), exposed through pytest-benchmark so
``pytest benchmarks/perf --benchmark-only`` gives calibrated timings
with warmup and statistics.  The ``repro.bench`` CLI remains the
canonical source of the committed ``BENCH_*.json`` trajectory because
it can diff against a baseline file; these tests guard the same paths
in CI-style runs.

Not part of the tier-1 suite (``testpaths = tests``): perf numbers are
environment-dependent, so the assertions here check work *counts*, not
times.
"""

from repro.bench import (
    run_address_churn,
    run_event_cancel_churn,
    run_event_churn,
    run_packet_sizing,
    run_scenario_build,
    run_scenario_traffic,
)


def test_perf_event_churn_micro(benchmark):
    units, unit = benchmark(run_event_churn, 10_000)
    assert (units, unit) == (10_010, "events")


def test_perf_event_cancel_churn_micro(benchmark):
    units, unit = benchmark(run_event_cancel_churn, 5_000)
    assert (units, unit) == (5_000, "timers")


def test_perf_scenario_build_micro(benchmark):
    units, unit = benchmark(run_scenario_build)
    assert (units, unit) == (1, "scenarios")


def test_perf_scenario_traffic_micro(benchmark):
    units, unit = benchmark(run_scenario_traffic, 100)
    assert (units, unit) == (100, "packets")


def test_perf_packet_sizing_micro(benchmark):
    units, unit = benchmark(run_packet_sizing, 10_000)
    assert (units, unit) == (10_000, "sizings")


def test_perf_address_churn_micro(benchmark):
    units, unit = benchmark(run_address_churn, 10_000)
    assert (units, unit) == (10_000, "addresses")
