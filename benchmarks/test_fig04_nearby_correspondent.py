"""Figure 4 — Behavior when CH is Close to MH.

Reproduces: "when they travel indirectly via the home agent, packets
sent by the correspondent host travel significantly further than is
necessary" — and the waste grows as the correspondent gets closer to
the mobile host.  The table sweeps the correspondent's backbone
attachment point and reports the In-IE path stretch relative to the
direct route.
"""

from repro.analysis import (
    MH_HOME_ADDRESS,
    TextTable,
    build_scenario,
    path_stretch,
)
from repro.core import ProbeStrategy
from repro.mobileip import Awareness

BACKBONE = 7


def one_way_metrics(scenario, use_binding: bool):
    """CH sends one datagram to the MH; returns (latency, hops)."""
    sim = scenario.sim
    if use_binding:
        scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of, 300.0)
    arrival = {}
    sock = scenario.mh.stack.udp_socket(7000)
    sock.on_receive(lambda d, s, ip, p: arrival.setdefault("t", sim.now))
    # Warm ARP caches so we measure routing, not resolution.
    ch_sock = scenario.ch.stack.udp_socket()
    ch_sock.sendto("warm", 50, MH_HOME_ADDRESS, 7000)
    sim.run_for(10)
    arrival.clear()
    start = sim.now
    ch_sock.sendto("probe", 50, MH_HOME_ADDRESS, 7000)
    sim.run_for(10)
    hops = sum(1 for entry in sim.trace.entries
               if entry.action == "forward" and entry.time >= start)
    return arrival["t"] - start, hops


def run_figure_4():
    rows = []
    for ch_attach in range(BACKBONE):
        triangle = build_scenario(
            seed=1004, backbone_size=BACKBONE, ch_attach=ch_attach,
            ch_awareness=Awareness.CONVENTIONAL,
            strategy=ProbeStrategy.CONSERVATIVE_FIRST,
        )
        tri_latency, tri_hops = one_way_metrics(triangle, use_binding=False)
        direct = build_scenario(
            seed=1004, backbone_size=BACKBONE, ch_attach=ch_attach,
            ch_awareness=Awareness.MOBILE_AWARE,
            strategy=ProbeStrategy.CONSERVATIVE_FIRST,
        )
        direct_latency, direct_hops = one_way_metrics(direct, use_binding=True)
        rows.append({
            "ch_attach": ch_attach,
            "distance_to_mh": abs(ch_attach - (BACKBONE - 1)),
            "triangle_latency": tri_latency,
            "direct_latency": direct_latency,
            "stretch": path_stretch(tri_latency, direct_latency),
            "triangle_hops": tri_hops,
            "direct_hops": direct_hops,
        })
    return rows


def test_fig04_nearby_correspondent(benchmark, reporter):
    rows = benchmark.pedantic(run_figure_4, rounds=1, iterations=1)
    table = TextTable(
        "Figure 4: Triangle-routing penalty vs. CH position "
        "(home at 0, MH visiting at 6)",
        ["CH attach", "CH<->MH distance", "In-IE latency (s)",
         "In-DE latency (s)", "stretch", "In-IE hops", "In-DE hops"],
    )
    for row in rows:
        table.add_row(row["ch_attach"], row["distance_to_mh"],
                      row["triangle_latency"], row["direct_latency"],
                      row["stretch"], row["triangle_hops"], row["direct_hops"])
    reporter.table(table)

    from repro.analysis import ascii_series

    reporter.text(ascii_series(
        "Figure 4 (shape): In-IE path stretch vs. CH distance to the MH",
        labels=[f"dist {row['distance_to_mh']}" for row in rows],
        values=[row["stretch"] for row in rows],
        unit="x",
    ))

    # Qualitative shape: stretch grows monotonically-ish as the CH gets
    # closer to the MH; the far CH barely suffers, the nearby CH pays
    # several-fold.
    nearest = rows[-1]          # CH adjacent to the visited domain
    farthest = rows[0]          # CH at the home end
    assert nearest["stretch"] > 3.0
    assert farthest["stretch"] < 2.0
    assert nearest["stretch"] > farthest["stretch"]
    # Triangle latency is roughly flat (every packet crosses to home),
    # while the direct latency shrinks with distance.
    assert rows[-1]["direct_latency"] < rows[0]["direct_latency"]
