"""§2 — Connection durability across movement.

Reproduces: "maintain communication associations (such as TCP
connections) even if the point of attachment changes during their
lifetime."  A telnet session runs while the mobile host moves to a new
domain mid-stream, once for each of the grid's useful cells' sending
arrangements: the home-address modes survive; the temporary-address
arrangement (In-DT/Out-DT) breaks.
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.apps import TelnetServer, TelnetSession
from repro.core.policy import Disposition, MobilityPolicyTable
from repro.mobileip import Awareness

KEYSTROKES = 8


def run_session(label: str, seed: int, bound_to_care_of: bool = False,
                policy_disposition=None, ch_awareness=Awareness.CONVENTIONAL,
                visited_filtering=True, give_binding=False):
    policy = None
    if policy_disposition is not None:
        policy = MobilityPolicyTable(default=policy_disposition)
    scenario = build_scenario(seed=seed, ch_awareness=ch_awareness,
                              policy=policy, visited_filtering=visited_filtering)
    TelnetServer(scenario.ch.stack)
    if give_binding:
        scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of, 300.0)
    scenario.net.add_domain("visited2", "10.5.0.0/16", attach_at=3,
                            source_filtering=visited_filtering,
                            forbid_transit=visited_filtering)
    session = TelnetSession(
        scenario.mh.stack, scenario.ch_ip, think_time=1.0,
        keystrokes=KEYSTROKES,
        bound_ip=scenario.mh.care_of if bound_to_care_of else None,
    )

    def move():
        scenario.mh.move_to(scenario.net, "visited2")
        if give_binding:
            scenario.ch.learn_binding(MH_HOME_ADDRESS, scenario.mh.care_of, 300.0)

    scenario.sim.events.schedule(3.5, move)
    scenario.sim.run_for(250)
    return {
        "label": label,
        "survived": session.survived,
        "echoes": session.echoes_received,
        "mean_rtt": session.mean_echo_rtt(),
    }


def run_durability():
    return [
        run_session("In-IE/Out-IE (conservative)", 2001,
                    policy_disposition=Disposition.HOME_ONLY),
        run_session("In-IE/Out-DH (permissive net)", 2002,
                    policy_disposition=Disposition.OPTIMISTIC,
                    visited_filtering=False),
        run_session("In-DE/Out-DH (aware CH)", 2003,
                    policy_disposition=Disposition.OPTIMISTIC,
                    ch_awareness=Awareness.MOBILE_AWARE,
                    visited_filtering=False, give_binding=True),
        run_session("In-IE/Out-* (adaptive, filtered)", 2004),
        run_session("In-DT/Out-DT (no Mobile IP)", 2005,
                    bound_to_care_of=True, visited_filtering=False),
    ]


def test_sec2_connection_durability(benchmark, reporter):
    rows = benchmark.pedantic(run_durability, rounds=1, iterations=1)
    table = TextTable(
        "§2: Telnet session across a mid-stream move "
        f"({KEYSTROKES} keystrokes)",
        ["arrangement", "survived move", "echoes received", "mean echo RTT (s)"],
    )
    for row in rows:
        table.add_row(row["label"], row["survived"], row["echoes"],
                      row["mean_rtt"] if row["mean_rtt"] is not None else "-")
    reporter.table(table)

    by_label = {row["label"]: row for row in rows}
    # Every Mobile IP arrangement survives with all echoes delivered.
    for label, row in by_label.items():
        if "Out-DT" not in label:
            assert row["survived"], label
            assert row["echoes"] == KEYSTROKES, label
    # The no-Mobile-IP arrangement breaks.
    out_dt = by_label["In-DT/Out-DT (no Mobile IP)"]
    assert not out_dt["survived"]
    assert out_dt["echoes"] < KEYSTROKES
