"""Figure 1 — Basic Mobile IP.

Reproduces: packets from the correspondent travel CH -> home network ->
(encapsulated) -> MH, while the mobile host's replies travel directly
MH -> CH.  The table reports hop counts and one-way delivery times for
the two directions, demonstrating the asymmetry the figure draws
("the IP specification makes no promises about the path that packets
will take").
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.core import ProbeStrategy
from repro.mobileip import Awareness


def run_figure_1():
    scenario = build_scenario(
        seed=1001,
        ch_awareness=Awareness.CONVENTIONAL,
        visited_filtering=False,
        strategy=ProbeStrategy.AGGRESSIVE_FIRST,
    )
    sim = scenario.sim

    times = {}
    mh_sock = scenario.mh.stack.udp_socket(7000)

    def on_request(data, size, src_ip, src_port):
        times["mh_received"] = sim.now
        mh_sock.sendto("reply", 100, src_ip, src_port,
                       src_override=MH_HOME_ADDRESS)
        times["mh_replied"] = sim.now

    mh_sock.on_receive(on_request)
    ch_sock = scenario.ch.stack.udp_socket()
    ch_sock.on_receive(lambda d, s, ip, p: times.__setitem__("ch_received", sim.now))
    times["ch_sent"] = sim.now
    ch_sock.sendto("request", 100, MH_HOME_ADDRESS, 7000)
    sim.run_for(30)

    def hops(direction_dst):
        # Only count forwards belonging to this conversation (after the
        # registration exchange that settle() already completed).
        return sum(
            1 for entry in sim.trace.entries
            if entry.action == "forward" and entry.dst in direction_dst
            and entry.time >= times["ch_sent"]
        )

    incoming_hops = hops({str(MH_HOME_ADDRESS), str(scenario.mh.care_of)})
    outgoing_hops = hops({str(scenario.ch_ip)})
    return {
        "incoming_time": times["ch_sent"] and times["mh_received"] - times["ch_sent"],
        "outgoing_time": times["ch_received"] - times["mh_replied"],
        "incoming_hops": incoming_hops,
        "outgoing_hops": outgoing_hops,
        "tunneled": scenario.ha.packets_tunneled,
        "reverse": scenario.ha.packets_reverse_forwarded,
    }


def test_fig01_basic_mobile_ip(benchmark, reporter):
    result = benchmark(run_figure_1)
    table = TextTable(
        "Figure 1: Basic Mobile IP — asymmetric paths",
        ["direction", "route", "router hops", "one-way time (s)"],
    )
    table.add_row("CH -> MH", "indirect via home agent (In-IE)",
                  result["incoming_hops"], result["incoming_time"])
    table.add_row("MH -> CH", "direct (Out-DH)",
                  result["outgoing_hops"], result["outgoing_time"])
    reporter.table(table)
    # Paper's qualitative claim: the incoming path is strictly longer.
    assert result["tunneled"] == 1
    assert result["reverse"] == 0
    assert result["incoming_hops"] > result["outgoing_hops"]
    assert result["incoming_time"] > result["outgoing_time"]
