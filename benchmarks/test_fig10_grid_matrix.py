"""Figure 10 — the Internet Mobility 4x4 grid, regenerated empirically.

Runs all sixteen (In, Out) combinations as real conversations on the
simulator (the same machinery as tests/integration/test_grid_matrix.py)
and prints the resulting grid next to the paper's classification.  The
series the paper reports — which cells converse and which do not — must
match exactly: 7 useful + 3 valid-but-unlikely cells work, the 6 dark
cells do not.
"""

from repro.analysis import TextTable
from repro.core.grid import GRID, CellClass
from repro.core.modes import InMode, OutMode

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from integration.test_grid_matrix import run_cell  # noqa: E402


def run_matrix():
    outcomes = {}
    for in_mode in InMode:
        for out_mode in OutMode:
            arrived, visible_src, sent_to = run_cell(in_mode, out_mode,
                                                     seed=1010)
            outcomes[(in_mode, out_mode)] = arrived and visible_src == sent_to
    return outcomes


def test_fig10_grid_matrix(benchmark, reporter):
    outcomes = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    table = TextTable(
        "Figure 10: empirical 4x4 grid (conversation works?) vs. paper",
        ["in \\ out"] + [mode.value for mode in OutMode],
    )
    for in_mode in InMode:
        cells = []
        for out_mode in OutMode:
            worked = outcomes[(in_mode, out_mode)]
            paper = GRID.cell(in_mode, out_mode).cell_class
            mark = {
                CellClass.USEFUL: "useful",
                CellClass.VALID_UNLIKELY: "valid~",
                CellClass.INAPPLICABLE: "dark",
            }[paper]
            cells.append(f"{'OK' if worked else 'FAIL'} ({mark})")
        table.add_row(in_mode.value, *cells)
    reporter.table(table)

    working = sum(1 for viable in outcomes.values() if viable)
    assert working == 10    # 7 useful + 3 valid-but-unlikely
    for (in_mode, out_mode), viable in outcomes.items():
        assert viable == GRID.cell(in_mode, out_mode).works_with_tcp
