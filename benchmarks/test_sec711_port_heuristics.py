"""§7.1.1 — Temporary address or home address?

Reproduces the decision machinery over a mixed workload: HTTP fetches
(port 80 -> Out-DT), DNS lookups (UDP 53 -> Out-DT), a telnet session
(port 23 -> home address / Mobile IP), an explicitly care-of-bound
socket (forced Out-DT), and a privacy-configured host (everything via
the home tunnel).  The table reports, per conversation, which source
address appeared on the wire and how many packets used the tunnel.
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.apps import (
    DNSLookupWorkload,
    HTTPClient,
    HTTPServer,
    TelnetServer,
    TelnetSession,
)
from repro.mobileip import Awareness


def wire_sources(scenario, dst_ip):
    """Distinct source addresses the MH used toward ``dst_ip``."""
    return {
        entry.src
        for entry in scenario.sim.trace.entries
        if entry.node == "mh" and entry.action == "send"
        and entry.dst == str(dst_ip)
    }


def run_workload(privacy: bool, seed: int):
    scenario = build_scenario(seed=seed, ch_awareness=Awareness.CONVENTIONAL,
                              with_dns=True, privacy=privacy)
    HTTPServer(scenario.ch.stack)
    TelnetServer(scenario.ch.stack)

    http = HTTPClient(scenario.mh.stack)
    fetch = http.fetch(scenario.ch_ip)
    dns = DNSLookupWorkload(scenario.mh.stack, scenario.dns_ip)
    dns.lookup("mh.home.example")
    telnet = TelnetSession(scenario.mh.stack, scenario.ch_ip,
                           think_time=0.5, keystrokes=3)
    scenario.sim.run_for(60)

    coa, home = str(scenario.mh.care_of), str(MH_HOME_ADDRESS)
    rows = []
    rows.append(("HTTP :80", sorted(wire_sources(scenario, scenario.ch_ip)
                                    & {coa}) or ["home-only"],
                 fetch.completed))
    rows.append(("DNS :53", sorted(wire_sources(scenario, scenario.dns_ip)),
                 bool(dns.completed)))
    rows.append(("telnet :23 endpoint", [str(telnet.connection.local_ip)],
                 telnet.echoes_received == 3))
    rows.append(("tunneled packets", [scenario.mh.tunnel.encapsulated_count],
                 True))
    return rows, scenario


def run_explicit_bind(seed: int):
    scenario = build_scenario(seed=seed, ch_awareness=Awareness.CONVENTIONAL,
                              visited_filtering=False)
    TelnetServer(scenario.ch.stack)
    session = TelnetSession(scenario.mh.stack, scenario.ch_ip,
                            think_time=0.5, keystrokes=3,
                            bound_ip=scenario.mh.care_of)
    scenario.sim.run_for(60)
    return str(session.connection.local_ip), str(scenario.mh.care_of)


def run_heuristics():
    normal, normal_scenario = run_workload(privacy=False, seed=7111)
    private, private_scenario = run_workload(privacy=True, seed=7112)
    bound_local_ip, bound_coa = run_explicit_bind(seed=7113)
    return {
        "normal": normal,
        "normal_scenario": normal_scenario,
        "private": private,
        "private_scenario": private_scenario,
        "bound": (bound_local_ip, bound_coa),
    }


def test_sec711_port_heuristics(benchmark, reporter):
    results = benchmark.pedantic(run_heuristics, rounds=1, iterations=1)
    table = TextTable(
        "§7.1.1: Address choice by heuristics, binding, and privacy",
        ["configuration", "conversation", "observation", "worked"],
    )
    for config in ("normal", "private"):
        for label, observation, worked in results[config]:
            table.add_row(config, label, ",".join(map(str, observation)),
                          worked)
    bound_local, bound_coa = results["bound"]
    table.add_row("explicit care-of bind", "telnet :23 endpoint",
                  bound_local, bound_local == bound_coa)
    reporter.table(table)

    normal = {label: (obs, ok) for label, obs, ok in results["normal"]}
    private = {label: (obs, ok) for label, obs, ok in results["private"]}
    scenario = results["normal_scenario"]
    coa, home = str(scenario.mh.care_of), str(MH_HOME_ADDRESS)

    # Normal host: HTTP and DNS used the care-of source (Out-DT);
    # telnet's endpoint identifier is the home address.
    assert coa in normal["HTTP :80"][0]
    assert normal["DNS :53"][0] == [coa]
    assert normal["telnet :23 endpoint"][0] == [home]
    assert all(ok for _, ok in normal.values())

    # Privacy host: everything uses the home address, nothing leaks the
    # care-of address, and packets ride the tunnel.
    private_scenario = results["private_scenario"]
    p_coa = str(private_scenario.mh.care_of)
    assert private["HTTP :80"][0] == ["home-only"]
    assert private["DNS :53"][0] == [str(MH_HOME_ADDRESS)]
    assert private["telnet :23 endpoint"][0] == [home]
    assert private["tunneled packets"][0][0] > normal["tunneled packets"][0][0]
    assert all(ok for _, ok in private.values())

    # Explicit bind forces Out-DT regardless of port heuristics.
    assert bound_local == bound_coa
