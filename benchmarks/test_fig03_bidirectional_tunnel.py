"""Figure 3 — Bi-directional Tunneling.

Reproduces: tunneling outgoing packets via the home agent "lengthens
the distance that the packets travel but meets the deliverability
requirement."  The table quantifies the trade: delivery ratio, router
hops, one-way latency, and on-wire bytes for Out-DH vs Out-IE under a
filtering visited domain.
"""

from repro.analysis import MH_HOME_ADDRESS, TextTable, build_scenario
from repro.core import ProbeStrategy
from repro.core.modes import AddressPlan, OutMode, build_outgoing
from repro.mobileip import Awareness
from repro.netsim.packet import IPProto
from repro.transport import UDPDatagram


def run_mode(mode: OutMode, seed: int):
    scenario = build_scenario(
        seed=seed,
        ch_awareness=Awareness.CONVENTIONAL,
        visited_filtering=True,       # the hostile environment of Fig. 2
        strategy=ProbeStrategy.AGGRESSIVE_FIRST,
    )
    plan = AddressPlan(MH_HOME_ADDRESS, scenario.mh.care_of,
                       scenario.ha_ip, scenario.ch_ip)
    sim = scenario.sim
    arrival = {}
    sock = scenario.ch.stack.udp_socket(6000)
    sock.on_receive(lambda d, s, ip, p: arrival.setdefault("t", sim.now))

    datagram = UDPDatagram(6001, 6000, "data", 100)
    packet = build_outgoing(mode, plan, payload=datagram,
                            payload_size=datagram.size, proto=IPProto.UDP)
    start = sim.now
    wire_size = packet.wire_size
    scenario.mh.ip_send(packet, bypass_overrides=True)
    sim.run_for(30)

    hops = sum(1 for entry in sim.trace.entries
               if entry.action == "forward" and entry.time >= start)
    return {
        "delivered": "t" in arrival,
        "latency": arrival.get("t", float("nan")) - start if arrival else None,
        "hops": hops,
        "wire_size": wire_size,
    }


def run_figure_3():
    return {
        OutMode.OUT_DH: run_mode(OutMode.OUT_DH, seed=1003),
        OutMode.OUT_IE: run_mode(OutMode.OUT_IE, seed=1003),
    }


def test_fig03_bidirectional_tunnel(benchmark, reporter):
    results = benchmark(run_figure_3)
    table = TextTable(
        "Figure 3: Bi-directional tunneling under filtering",
        ["outgoing mode", "delivered", "router hops", "latency (s)",
         "first-hop bytes"],
    )
    for mode, r in results.items():
        table.add_row(mode.value, r["delivered"], r["hops"],
                      r["latency"] if r["latency"] is not None else "-",
                      r["wire_size"])
    reporter.table(table)

    dh, ie = results[OutMode.OUT_DH], results[OutMode.OUT_IE]
    assert not dh["delivered"]
    assert ie["delivered"]
    # The cure costs path length and 20 bytes of encapsulation.
    assert ie["hops"] > dh["hops"]
    assert ie["wire_size"] == dh["wire_size"] + 20
