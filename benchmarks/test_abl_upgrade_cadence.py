"""Ablation — the tentative-upgrade cadence ([Fox96] / §7.1.2).

The conservative-first strategy "tentatively tr[ies] each of the more
aggressive options ... at each stage being prepared to return."  How
eagerly?  The `upgrade_after` knob (successes before the next tentative
step) trades convergence speed against probe churn:

* eager (1): reaches Out-DH fastest, but on a *filtering* path it keeps
  re-probing the failed rungs' cousins and churns modes;
* patient (8): almost no churn, but pays the tunnel's path length for
  most of the conversation on a permissive path.

The table reports messages tunneled (the inefficiency) and mode
changes (the churn) for a 16-message conversation at each cadence.
"""

from repro.analysis import TextTable, build_scenario
from repro.core import ProbeStrategy
from repro.mobileip import Awareness

CADENCES = [1, 4, 8]
MESSAGES = 16


def run_cadence(upgrade_after: int, filtering: bool, seed: int):
    scenario = build_scenario(seed=seed,
                              strategy=ProbeStrategy.CONSERVATIVE_FIRST,
                              visited_filtering=filtering,
                              ch_awareness=Awareness.DECAP_CAPABLE)
    scenario.mh.engine.cache.upgrade_after = upgrade_after
    sim = scenario.sim
    got = []
    scenario.ch.stack.listen(
        6000,
        lambda conn: setattr(conn, "on_data",
                             lambda d, s: conn.send(20, ("ack", d))))
    conn = scenario.mh.stack.connect(scenario.ch_ip, 6000)
    conn.on_data = lambda d, s: got.append(d)

    def tick(count=[0]):
        if count[0] >= MESSAGES or not conn.is_open:
            return
        count[0] += 1
        conn.send(50, count[0])
        sim.events.schedule(2.0, tick)

    conn.on_established = tick
    sim.run_for(240)
    record = scenario.mh.engine.cache.records.get(scenario.ch_ip)
    return {
        "echoes": len(got),
        "tunneled": scenario.mh.tunnel.encapsulated_count,
        "mode_changes": record.mode_changes if record else 0,
        "final": record.current.value if record else "-",
    }


def run_ablation():
    rows = []
    for filtering in (False, True):
        for cadence in CADENCES:
            rows.append(((cadence, filtering),
                         run_cadence(cadence, filtering, 8901)))
    return rows


def test_abl_upgrade_cadence(benchmark, reporter):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = TextTable(
        f"Ablation: tentative-upgrade cadence (conservative-first, "
        f"{MESSAGES} messages)",
        ["upgrade after", "filtered", "echoes", "tunneled pkts",
         "mode changes", "final mode"],
    )
    for (cadence, filtering), r in rows:
        table.add_row(cadence, filtering, r["echoes"], r["tunneled"],
                      r["mode_changes"], r["final"])
    reporter.table(table)

    results = dict(rows)
    for r in results.values():
        assert r["echoes"] == MESSAGES
    # Permissive: eagerness reduces tunneled packets monotonically.
    permissive = [results[(c, False)]["tunneled"] for c in CADENCES]
    assert permissive == sorted(permissive)
    # Filtering: patience reduces churn monotonically.
    churn = [results[(c, True)]["mode_changes"] for c in CADENCES]
    assert churn == sorted(churn, reverse=True)
